// Property tests over randomly generated graphs at several SBM
// configurations: invariants of normalization, composition, and the
// inductive split that must hold regardless of graph shape.
#include <gtest/gtest.h>

#include "core/tensor_ops.h"
#include "data/synthetic.h"
#include "graph/compose.h"
#include "graph/inductive.h"

namespace mcond {
namespace {

struct GraphCase {
  int64_t nodes;
  int64_t classes;
  double avg_degree;
  double homophily;
};

class GraphPropertyTest : public ::testing::TestWithParam<GraphCase> {
 protected:
  Graph MakeGraph(uint64_t seed) const {
    SbmConfig config;
    config.num_nodes = GetParam().nodes;
    config.num_classes = GetParam().classes;
    config.feature_dim = 8;
    config.avg_degree = GetParam().avg_degree;
    config.homophily = GetParam().homophily;
    Rng rng(seed);
    return GenerateSbmGraph(config, rng);
  }
};

TEST_P(GraphPropertyTest, NormalizedAdjacencyIsSymmetric) {
  Graph g = MakeGraph(1);
  const CsrMatrix& norm = g.normalized_adjacency();
  for (int64_t i = 0; i < norm.rows(); ++i) {
    for (int64_t k = norm.row_ptr()[static_cast<size_t>(i)];
         k < norm.row_ptr()[static_cast<size_t>(i) + 1]; ++k) {
      const int64_t j = norm.col_idx()[static_cast<size_t>(k)];
      EXPECT_NEAR(norm.values()[static_cast<size_t>(k)], norm.At(j, i),
                  1e-6f);
    }
  }
}

TEST_P(GraphPropertyTest, PropagationContracts) {
  // Repeated application of the GCN kernel never blows up (spectral radius
  // <= 1 for any graph).
  Graph g = MakeGraph(2);
  Rng rng(2);
  Tensor x = rng.NormalTensor(g.NumNodes(), 4);
  Tensor h = x;
  for (int i = 0; i < 20; ++i) h = g.normalized_adjacency().SpMM(h);
  EXPECT_TRUE(h.AllFinite());
  EXPECT_LE(FrobeniusNorm(h), FrobeniusNorm(x) * 1.01f);
}

TEST_P(GraphPropertyTest, RowNormalizedIsStochastic) {
  Graph g = MakeGraph(3);
  for (float s : g.row_normalized_adjacency().RowSums()) {
    EXPECT_NEAR(s, 1.0f, 1e-5f);  // Self-loops make every row non-empty.
  }
}

TEST_P(GraphPropertyTest, SplitCoversAllNodes) {
  Graph g = MakeGraph(4);
  Rng rng(4);
  InductiveDataset ds = MakeInductiveSplit(g, 0.15, 0.15, rng);
  EXPECT_EQ(ds.train_graph.NumNodes() + ds.val.size() + ds.test.size(),
            g.NumNodes());
}

TEST_P(GraphPropertyTest, ComposedGraphDegreesAreConsistent) {
  // Composing a batch must add exactly the link and inter degrees.
  Graph g = MakeGraph(5);
  Rng rng(5);
  InductiveDataset ds = MakeInductiveSplit(g, 0.1, 0.2, rng);
  const CsrMatrix composed = ComposeBlockAdjacency(
      ds.train_graph.adjacency(), ds.test.links, ds.test.inter);
  EXPECT_EQ(composed.Nnz(), ds.train_graph.NumEdges() +
                                2 * ds.test.links.Nnz() +
                                ds.test.inter.Nnz());
}

TEST_P(GraphPropertyTest, InducedSubgraphOfAllNodesIsIdentity) {
  Graph g = MakeGraph(6);
  std::vector<int64_t> all(static_cast<size_t>(g.NumNodes()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
  Graph sub = InducedSubgraph(g, all);
  EXPECT_EQ(sub.NumEdges(), g.NumEdges());
  EXPECT_TRUE(AllClose(sub.features(), g.features()));
  EXPECT_EQ(sub.labels(), g.labels());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GraphPropertyTest,
    ::testing::Values(GraphCase{60, 2, 4.0, 0.9},
                      GraphCase{150, 3, 8.0, 0.5},
                      GraphCase{200, 6, 12.0, 0.2},
                      GraphCase{100, 10, 6.0, 0.7},
                      GraphCase{40, 2, 20.0, 0.5}),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.classes) + "d" +
             std::to_string(static_cast<int>(info.param.avg_degree)) + "h" +
             std::to_string(static_cast<int>(info.param.homophily * 100));
    });

}  // namespace
}  // namespace mcond
