// Integration tests: the full Algorithm 1 pipeline on a small dataset,
// the GCond baseline, and end-to-end inductive serving quality.
#include "condense/mcond.h"

#include <gtest/gtest.h>

#include "condense/gcond.h"
#include "core/tensor_ops.h"
#include "data/datasets.h"
#include "eval/inference.h"
#include "nn/trainer.h"

namespace mcond {
namespace {

MCondConfig FastConfig() {
  MCondConfig config;
  config.outer_rounds = 5;
  config.s_steps_per_round = 6;
  config.m_steps_per_round = 6;
  return config;
}

class MCondPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new InductiveDataset(MakeDatasetByName("tiny-sim", 17));
    result_ = new MCondResult(RunMCond(data_->train_graph, data_->val,
                                       /*num_synthetic=*/12, FastConfig(),
                                       /*seed=*/17));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete data_;
    result_ = nullptr;
    data_ = nullptr;
  }

  static InductiveDataset* data_;
  static MCondResult* result_;
};

InductiveDataset* MCondPipelineTest::data_ = nullptr;
MCondResult* MCondPipelineTest::result_ = nullptr;

TEST_F(MCondPipelineTest, ShapesAreConsistent) {
  const Graph& s = result_->condensed.graph;
  EXPECT_EQ(s.NumNodes(), 12);
  EXPECT_EQ(s.FeatureDim(), data_->train_graph.FeatureDim());
  EXPECT_EQ(s.num_classes(), data_->train_graph.num_classes());
  EXPECT_EQ(result_->condensed.mapping.rows(),
            data_->train_graph.NumNodes());
  EXPECT_EQ(result_->condensed.mapping.cols(), 12);
  EXPECT_EQ(result_->dense_adjacency.rows(), 12);
  EXPECT_EQ(result_->dense_mapping.rows(), data_->train_graph.NumNodes());
}

TEST_F(MCondPipelineTest, ArtifactsAreFiniteAndNonNegative) {
  EXPECT_TRUE(result_->synthetic_features.AllFinite());
  EXPECT_TRUE(result_->dense_adjacency.AllFinite());
  EXPECT_TRUE(result_->dense_mapping.AllFinite());
  for (float v : result_->condensed.mapping.values()) EXPECT_GE(v, 0.0f);
  for (float v : result_->condensed.graph.adjacency().values()) {
    EXPECT_GE(v, 0.0f);
  }
}

TEST_F(MCondPipelineTest, SyntheticLabelsCoverAllClasses) {
  std::vector<int64_t> counts(
      static_cast<size_t>(data_->train_graph.num_classes()), 0);
  for (int64_t y : result_->synthetic_labels) {
    ++counts[static_cast<size_t>(y)];
  }
  for (int64_t c : counts) EXPECT_GE(c, 1);
}

TEST_F(MCondPipelineTest, LossesDecrease) {
  ASSERT_GT(result_->s_loss_history.size(), 5u);
  ASSERT_GT(result_->m_loss_history.size(), 5u);
  // Mapping loss must improve from its initial value within the run.
  const float m_first = result_->m_loss_history.front();
  const float m_min = *std::min_element(result_->m_loss_history.begin(),
                                        result_->m_loss_history.end());
  EXPECT_LT(m_min, m_first);
}

TEST_F(MCondPipelineTest, MappingConcentratesOnSameClass) {
  // Trained M should put most mass on same-class synthetic nodes (Fig. 5a).
  const Tensor& m = result_->dense_mapping;
  double same = 0.0, total = 0.0;
  for (int64_t i = 0; i < m.rows(); ++i) {
    const int64_t yi =
        data_->train_graph.labels()[static_cast<size_t>(i)];
    for (int64_t j = 0; j < m.cols(); ++j) {
      total += m.At(i, j);
      if (result_->synthetic_labels[static_cast<size_t>(j)] == yi) {
        same += m.At(i, j);
      }
    }
  }
  EXPECT_GT(same / total, 0.5);
}

TEST_F(MCondPipelineTest, SparsifyRespectsThresholds) {
  const CondensedGraph tight = result_->Sparsify(/*mu=*/0.9f, /*delta=*/0.9f);
  const CondensedGraph loose = result_->Sparsify(/*mu=*/0.0f, /*delta=*/0.0f);
  EXPECT_LE(tight.graph.NumEdges(), loose.graph.NumEdges());
  EXPECT_LE(tight.mapping.Nnz(), loose.mapping.Nnz());
  EXPECT_EQ(loose.mapping.Nnz(),
            result_->dense_mapping.rows() * result_->dense_mapping.cols());
  for (float v : tight.mapping.values()) EXPECT_GE(v, 0.9f);
}

TEST_F(MCondPipelineTest, EndToEndInductiveAccuracyBeatsChance) {
  Rng rng(3);
  GnnConfig gc;
  auto model = MakeGnn(GnnArch::kSgc, data_->train_graph.FeatureDim(),
                       data_->train_graph.num_classes(), gc, rng);
  GraphOperators syn_ops =
      GraphOperators::FromGraph(result_->condensed.graph);
  std::vector<int64_t> all(result_->condensed.graph.NumNodes());
  std::iota(all.begin(), all.end(), 0);
  TrainConfig tc;
  tc.epochs = 200;
  TrainNodeClassifier(*model, syn_ops, result_->condensed.graph.features(),
                      result_->condensed.graph.labels(), all, tc, rng);
  InferenceResult res = ServeOnCondensed(*model, result_->condensed,
                                         data_->test, /*graph_batch=*/true,
                                         rng, /*repeats=*/1);
  EXPECT_GT(res.accuracy, 0.6);  // 3 classes → chance ≈ 0.33.
  // Node-batch serving works too and stays above chance.
  InferenceResult node_res = ServeOnCondensed(
      *model, result_->condensed, data_->test, /*graph_batch=*/false, rng, 1);
  EXPECT_GT(node_res.accuracy, 0.6);
}

TEST_F(MCondPipelineTest, DeterministicGivenSeed) {
  MCondResult again = RunMCond(data_->train_graph, data_->val, 12,
                               FastConfig(), /*seed=*/17);
  EXPECT_TRUE(
      AllClose(again.synthetic_features, result_->synthetic_features));
  EXPECT_TRUE(AllClose(again.dense_mapping, result_->dense_mapping));
}

TEST(MCondAblationTest, SwitchesDisableComponents) {
  InductiveDataset data = MakeDatasetByName("tiny-sim", 19);
  MCondConfig config = FastConfig();
  config.outer_rounds = 2;
  config.use_structure_loss = false;
  config.use_inductive_loss = false;
  MCondResult plain =
      RunMCond(data.train_graph, data.val, 12, config, 19);
  EXPECT_GT(plain.condensed.mapping.Nnz(), 0);  // ℒ_tra still trains M.
  EXPECT_TRUE(plain.dense_mapping.AllFinite());
}

TEST(MCondAblationTest, OneStepMatchingRuns) {
  InductiveDataset data = MakeDatasetByName("tiny-sim", 37);
  MCondConfig config = FastConfig();
  config.one_step_matching = true;
  MCondResult r = RunMCond(data.train_graph, data.val, 12, config, 37);
  EXPECT_TRUE(r.synthetic_features.AllFinite());
  EXPECT_GT(r.condensed.mapping.Nnz(), 0);
  // One-step matching must still produce a usable S: train + serve above
  // chance.
  Rng rng(38);
  GnnConfig gc;
  auto model = MakeGnn(GnnArch::kSgc, data.train_graph.FeatureDim(),
                       data.train_graph.num_classes(), gc, rng);
  GraphOperators syn_ops = GraphOperators::FromGraph(r.condensed.graph);
  std::vector<int64_t> all(r.condensed.graph.NumNodes());
  std::iota(all.begin(), all.end(), 0);
  TrainConfig tc;
  tc.epochs = 200;
  TrainNodeClassifier(*model, syn_ops, r.condensed.graph.features(),
                      r.condensed.graph.labels(), all, tc, rng);
  InferenceResult res = ServeOnCondensed(*model, r.condensed, data.test,
                                         true, rng, 1);
  EXPECT_GT(res.accuracy, 0.5);
}

TEST(GCondTest, ProducesGraphWithoutMapping) {
  InductiveDataset data = MakeDatasetByName("tiny-sim", 23);
  MCondConfig config = FastConfig();
  config.outer_rounds = 3;
  MCondResult gcond = RunGCond(data.train_graph, 12, config, 23);
  EXPECT_EQ(gcond.condensed.mapping.Nnz(), 0);
  EXPECT_EQ(gcond.condensed.graph.NumNodes(), 12);
  EXPECT_TRUE(gcond.m_loss_history.empty());
  EXPECT_FALSE(gcond.s_loss_history.empty());
}

TEST(GCondTest, TrainedOnSyntheticServesOnOriginal) {
  // The S→O setting: GCond's graph trains a GNN that must transfer to the
  // original graph above chance.
  InductiveDataset data = MakeDatasetByName("tiny-sim", 29);
  MCondConfig config = FastConfig();
  MCondResult gcond = RunGCond(data.train_graph, 12, config, 29);
  Rng rng(5);
  GnnConfig gc;
  auto model = MakeGnn(GnnArch::kSgc, data.train_graph.FeatureDim(),
                       data.train_graph.num_classes(), gc, rng);
  GraphOperators syn_ops = GraphOperators::FromGraph(gcond.condensed.graph);
  std::vector<int64_t> all(gcond.condensed.graph.NumNodes());
  std::iota(all.begin(), all.end(), 0);
  TrainConfig tc;
  tc.epochs = 200;
  TrainNodeClassifier(*model, syn_ops, gcond.condensed.graph.features(),
                      gcond.condensed.graph.labels(), all, tc, rng);
  InferenceResult res = ServeOnOriginal(*model, data.train_graph, data.test,
                                        /*graph_batch=*/true, rng, 1);
  EXPECT_GT(res.accuracy, 0.6);
}

TEST(MCondConfigTest, NumSyntheticBoundsChecked) {
  InductiveDataset data = MakeDatasetByName("tiny-sim", 31);
  MCondConfig config = FastConfig();
  EXPECT_DEATH(RunMCond(data.train_graph, data.val, 1, config, 1), "check");
}

}  // namespace
}  // namespace mcond
