#include "coarsen/coarsening.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace mcond {
namespace {

Graph TestGraph(uint64_t seed = 91) {
  SbmConfig config;
  config.num_nodes = 150;
  config.num_classes = 3;
  config.feature_dim = 8;
  config.avg_degree = 8.0;
  config.homophily = 0.85;
  Rng rng(seed);
  return GenerateSbmGraph(config, rng);
}

TEST(CoarseningTest, ReachesTargetExactly) {
  Graph g = TestGraph();
  Rng rng(1);
  for (int64_t target : {75, 30, 10, 3}) {
    CondensedGraph cg = CoarsenGraph(g, target, CoarseningConfig{}, rng);
    EXPECT_EQ(cg.graph.NumNodes(), target) << "target " << target;
    EXPECT_EQ(cg.mapping.rows(), g.NumNodes());
    EXPECT_EQ(cg.mapping.cols(), target);
  }
}

TEST(CoarseningTest, MappingIsAPartition) {
  Graph g = TestGraph();
  Rng rng(2);
  CondensedGraph cg = CoarsenGraph(g, 20, CoarseningConfig{}, rng);
  std::vector<int64_t> sizes(20, 0);
  for (int64_t i = 0; i < g.NumNodes(); ++i) {
    ASSERT_EQ(cg.mapping.RowNnz(i), 1);
    for (int64_t k = cg.mapping.row_ptr()[static_cast<size_t>(i)];
         k < cg.mapping.row_ptr()[static_cast<size_t>(i) + 1]; ++k) {
      EXPECT_EQ(cg.mapping.values()[static_cast<size_t>(k)], 1.0f);
      ++sizes[static_cast<size_t>(
          cg.mapping.col_idx()[static_cast<size_t>(k)])];
    }
  }
  // Every super-node is non-empty.
  for (int64_t s : sizes) EXPECT_GE(s, 1);
}

TEST(CoarseningTest, EdgeMassConserved) {
  // Pᵀ A P preserves total edge weight; only contracted (intra-cluster)
  // edges move onto the dropped diagonal.
  Graph g = TestGraph();
  Rng rng(3);
  CondensedGraph cg = CoarsenGraph(g, 40, CoarseningConfig{}, rng);
  double total_orig = 0.0, total_coarse = 0.0;
  for (float v : g.adjacency().values()) total_orig += v;
  for (float v : cg.graph.adjacency().values()) total_coarse += v;
  EXPECT_LE(total_coarse, total_orig + 1e-3);
  EXPECT_GT(total_coarse, 0.0);
}

TEST(CoarseningTest, HomophilousGraphKeepsLabelPurity) {
  // With strong homophily, heavy-edge matching mostly contracts
  // within-class edges, so majority labels represent members well.
  Graph g = TestGraph(92);
  Rng rng(4);
  CondensedGraph cg = CoarsenGraph(g, 30, CoarseningConfig{}, rng);
  int64_t pure = 0, total = 0;
  for (int64_t i = 0; i < g.NumNodes(); ++i) {
    const int64_t s = cg.mapping.col_idx()[static_cast<size_t>(
        cg.mapping.row_ptr()[static_cast<size_t>(i)])];
    ++total;
    if (cg.graph.labels()[static_cast<size_t>(s)] ==
        g.labels()[static_cast<size_t>(i)]) {
      ++pure;
    }
  }
  EXPECT_GT(static_cast<double>(pure) / total, 0.7);
}

TEST(CoarseningTest, FeaturesAreMemberMeans) {
  Graph g = TestGraph();
  Rng rng(5);
  CondensedGraph cg = CoarsenGraph(g, 25, CoarseningConfig{}, rng);
  // Recompute one super-node's mean by hand.
  const int64_t target = 7;
  Tensor mean(1, g.FeatureDim());
  int64_t count = 0;
  for (int64_t i = 0; i < g.NumNodes(); ++i) {
    const int64_t s = cg.mapping.col_idx()[static_cast<size_t>(
        cg.mapping.row_ptr()[static_cast<size_t>(i)])];
    if (s != target) continue;
    for (int64_t j = 0; j < g.FeatureDim(); ++j) {
      mean.At(0, j) += g.features().At(i, j);
    }
    ++count;
  }
  ASSERT_GT(count, 0);
  for (int64_t j = 0; j < g.FeatureDim(); ++j) {
    EXPECT_NEAR(cg.graph.features().At(target, j), mean.At(0, j) / count,
                1e-4f);
  }
}

TEST(CoarseningTest, TargetEqualToSizeIsIdentityPartition) {
  Graph g = TestGraph();
  Rng rng(6);
  CondensedGraph cg =
      CoarsenGraph(g, g.NumNodes(), CoarseningConfig{}, rng);
  EXPECT_EQ(cg.graph.NumNodes(), g.NumNodes());
  EXPECT_EQ(cg.mapping.Nnz(), g.NumNodes());
}

}  // namespace
}  // namespace mcond
