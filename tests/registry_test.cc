// Tests for the multi-tenant ModelRegistry (src/net/model_registry.*):
// artifact-mismatch isolation (a corrupt or truncated artifact fails its
// own AddTenant with a Status while every other tenant keeps serving),
// LoadDirectory's skip-and-warn policy, duplicate/invalid tenant names,
// the empty-mapping precondition, and the determinism contract of
// DefaultSgcFactory (same artifact, bit-identical logits).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "condense/artifact_io.h"
#include "coreset/coreset.h"
#include "data/datasets.h"
#include "eval/batching.h"
#include "net/model_registry.h"
#include "nn/sgc.h"

namespace mcond {
namespace net {
namespace {

namespace fs = std::filesystem;

class RegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new InductiveDataset(MakeDatasetByName("tiny-sim", 41));
    Rng rng(42);
    const std::vector<int64_t> selected =
        SelectCoreset(CoresetMethod::kRandom, data_->train_graph,
                      data_->train_graph.features(), /*num_select=*/24, rng);
    condensed_ =
        new CondensedGraph(BuildCoresetGraph(data_->train_graph, selected));
  }
  static void TearDownTestSuite() {
    delete condensed_;
    condensed_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mcond_registry_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Deep copy (CondensedGraph is move-only friendly; tests hand copies to
  /// the registry, which takes ownership).
  static CondensedGraph CopyArtifact() { return *condensed_; }

  std::string SaveArtifact(const std::string& filename) {
    const std::string path = (dir_ / filename).string();
    const Status st = SaveCondensedGraph(path, *condensed_);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return path;
  }

  /// Copies the first `bytes` of a valid artifact — a torn write.
  std::string TruncateArtifact(const std::string& filename, int64_t bytes) {
    const std::string full = SaveArtifact("full_tmp.bin");
    std::ifstream in(full, std::ios::binary);
    std::vector<char> head(static_cast<size_t>(bytes));
    in.read(head.data(), bytes);
    EXPECT_EQ(in.gcount(), bytes);
    in.close();
    fs::remove(full);
    const std::string path = (dir_ / filename).string();
    std::ofstream out(path, std::ios::binary);
    out.write(head.data(), bytes);
    return path;
  }

  static ModelRegistry::ModelFactory UntrainedSgcFactory() {
    return [](const CondensedGraph& cg)
        -> StatusOr<std::unique_ptr<GnnModel>> {
      GnnConfig gc;
      Rng rng(18);
      return std::unique_ptr<GnnModel>(std::make_unique<Sgc>(
          cg.graph.FeatureDim(), cg.graph.num_classes(), gc, rng));
    };
  }

  fs::path dir_;
  static InductiveDataset* data_;
  static CondensedGraph* condensed_;
};

InductiveDataset* RegistryTest::data_ = nullptr;
CondensedGraph* RegistryTest::condensed_ = nullptr;

TEST_F(RegistryTest, CorruptArtifactFailsWithoutTakingDownNeighbors) {
  ModelRegistry registry(UntrainedSgcFactory());
  ASSERT_TRUE(registry.AddTenant("alpha", CopyArtifact(), TenantConfig())
                  .ok());

  // Garbage bytes: not an artifact at all.
  const std::string garbage = (dir_ / "garbage.bin").string();
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "definitely not an artifact";
  }
  Status st = registry.AddTenant("bad", garbage, TenantConfig());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(registry.Find("bad"), nullptr);

  // Torn write: a valid header, then EOF mid-payload.
  st = registry.AddTenant("torn", TruncateArtifact("torn.bin", 64),
                          TenantConfig());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(registry.Find("torn"), nullptr);

  // Missing file.
  st = registry.AddTenant("ghost", (dir_ / "absent.bin").string(),
                          TenantConfig());
  EXPECT_FALSE(st.ok());

  // The surviving tenant still serves, end to end.
  EXPECT_EQ(registry.size(), 1);
  Tenant* alpha = registry.Find("alpha");
  ASSERT_NE(alpha, nullptr);
  const std::vector<HeldOutBatch> batches = SplitIntoBatches(data_->test, 8);
  Tensor out;
  const Status serve = alpha->server->ServeSync(batches[0], true, &out);
  ASSERT_TRUE(serve.ok()) << serve.ToString();
  EXPECT_EQ(out.rows(), batches[0].size());
  EXPECT_EQ(out.cols(), alpha->num_classes);
}

TEST_F(RegistryTest, ValidArtifactFileRoundTripsIntoAServingTenant) {
  ModelRegistry registry(UntrainedSgcFactory());
  const Status st =
      registry.AddTenant("disk", SaveArtifact("disk.bin"), TenantConfig());
  ASSERT_TRUE(st.ok()) << st.ToString();
  Tenant* tenant = registry.Find("disk");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->feat_dim, data_->train_graph.FeatureDim());
  EXPECT_EQ(tenant->num_classes, data_->train_graph.num_classes());
}

TEST_F(RegistryTest, LoadDirectorySkipsCorruptFilesAndCountsTheRest) {
  SaveArtifact("a.bin");
  SaveArtifact("b.bin");
  TruncateArtifact("c_truncated.bin", 32);
  {
    std::ofstream out((dir_ / "d_garbage.bin").string(), std::ios::binary);
    out << "nope";
  }

  ModelRegistry registry(UntrainedSgcFactory());
  const StatusOr<int> added =
      registry.LoadDirectory(dir_.string(), TenantConfig());
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value(), 2);
  EXPECT_NE(registry.Find("a"), nullptr);
  EXPECT_NE(registry.Find("b"), nullptr);
  EXPECT_EQ(registry.Find("c_truncated"), nullptr);
  EXPECT_EQ(registry.Find("d_garbage"), nullptr);
}

TEST_F(RegistryTest, LoadDirectoryErrors) {
  ModelRegistry registry(UntrainedSgcFactory());
  // Nonexistent directory.
  EXPECT_FALSE(
      registry.LoadDirectory((dir_ / "absent").string(), TenantConfig())
          .ok());
  // A directory with nothing loadable.
  {
    std::ofstream out((dir_ / "junk.bin").string(), std::ios::binary);
    out << "junk";
  }
  EXPECT_FALSE(registry.LoadDirectory(dir_.string(), TenantConfig()).ok());
}

TEST_F(RegistryTest, DuplicateNameIsFailedPrecondition) {
  ModelRegistry registry(UntrainedSgcFactory());
  ASSERT_TRUE(registry.AddTenant("alpha", CopyArtifact(), TenantConfig())
                  .ok());
  const Status st =
      registry.AddTenant("alpha", CopyArtifact(), TenantConfig());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.size(), 1);
}

TEST_F(RegistryTest, TenantNameValidation) {
  EXPECT_TRUE(ModelRegistry::ValidTenantName("alpha_2"));
  EXPECT_FALSE(ModelRegistry::ValidTenantName(""));
  EXPECT_FALSE(ModelRegistry::ValidTenantName("Bad-Name"));
  EXPECT_FALSE(ModelRegistry::ValidTenantName("dots.break.metrics"));
  EXPECT_FALSE(ModelRegistry::ValidTenantName(std::string(65, 'a')));

  EXPECT_EQ(ModelRegistry::SanitizeTenantName("My Model-V2"), "my_model_v2");

  ModelRegistry registry(UntrainedSgcFactory());
  const Status st =
      registry.AddTenant("Bad Name", CopyArtifact(), TenantConfig());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(RegistryTest, EmptyMappingIsRejected) {
  CondensedGraph empty_mapping = CopyArtifact();
  empty_mapping.mapping = CsrMatrix();
  ModelRegistry registry(UntrainedSgcFactory());
  const Status st =
      registry.AddTenant("hollow", std::move(empty_mapping), TenantConfig());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.size(), 0);
}

TEST_F(RegistryTest, FactoryErrorPropagatesAndAddsNothing) {
  ModelRegistry registry([](const CondensedGraph&)
                             -> StatusOr<std::unique_ptr<GnnModel>> {
    return Status(StatusCode::kInternal, "factory exploded");
  });
  const Status st =
      registry.AddTenant("alpha", CopyArtifact(), TenantConfig());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(registry.size(), 0);
}

TEST_F(RegistryTest, DefaultSgcFactoryIsDeterministic) {
  // The loopback determinism gate depends on this: training the same
  // artifact twice must produce bit-identical parameters, hence logits.
  const std::vector<HeldOutBatch> batches = SplitIntoBatches(data_->test, 8);
  Tensor first, second;
  for (Tensor* out : {&first, &second}) {
    ModelRegistry registry(
        ModelRegistry::DefaultSgcFactory(/*train_epochs=*/5, /*seed=*/7));
    ASSERT_TRUE(registry.AddTenant("alpha", CopyArtifact(), TenantConfig())
                    .ok());
    const Status st =
        registry.Find("alpha")->server->ServeSync(batches[0], true, out);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  ASSERT_TRUE(first.SameShape(second));
  EXPECT_EQ(std::memcmp(first.data(), second.data(),
                        static_cast<size_t>(first.size()) * sizeof(float)),
            0)
      << "DefaultSgcFactory broke its determinism contract";
}

}  // namespace
}  // namespace net
}  // namespace mcond
