// Unit tests for the condensation building blocks: label allocation,
// feature initialization, MLP_Φ adjacency generation, dense normalization,
// relay gradients, gradient matching, and the mapping matrix.
#include <algorithm>

#include <gtest/gtest.h>

#include "autograd/optimizer.h"
#include "condense/adjacency_generator.h"
#include "condense/class_distribution.h"
#include "condense/dense_ops.h"
#include "condense/gradient_matching.h"
#include "condense/mapping.h"
#include "condense/relay_sgc.h"
#include "core/tensor_ops.h"
#include "data/synthetic.h"
#include "gradcheck.h"

namespace mcond {
namespace {

Graph TestGraph(uint64_t seed = 21, int64_t n = 90, int64_t c = 3) {
  SbmConfig config;
  config.num_nodes = n;
  config.num_classes = c;
  config.feature_dim = 8;
  config.avg_degree = 6.0;
  Rng rng(seed);
  return GenerateSbmGraph(config, rng);
}

TEST(ClassDistributionTest, AllocatesProportionallyWithFloor) {
  Graph g = TestGraph();
  const std::vector<int64_t> labels = AllocateSyntheticLabels(g, 12);
  ASSERT_EQ(labels.size(), 12u);
  std::vector<int64_t> counts(3, 0);
  for (int64_t y : labels) ++counts[static_cast<size_t>(y)];
  for (int64_t c : counts) EXPECT_GE(c, 1);
  // Proportionality: largest class gets at least as many synthetic nodes.
  const std::vector<int64_t> orig = g.ClassCounts();
  const int64_t argmax_orig = static_cast<int64_t>(
      std::max_element(orig.begin(), orig.end()) - orig.begin());
  const int64_t max_count =
      *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(counts[static_cast<size_t>(argmax_orig)], max_count);
}

TEST(ClassDistributionTest, LabelsGroupedByClass) {
  Graph g = TestGraph();
  const std::vector<int64_t> labels = AllocateSyntheticLabels(g, 10);
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
}

TEST(ClassDistributionTest, MinimumOnePerClassEnforced) {
  Graph g = TestGraph(22, 90, 5);
  EXPECT_DEATH(AllocateSyntheticLabels(g, 3), "at least one");
  const std::vector<int64_t> labels = AllocateSyntheticLabels(g, 5);
  std::vector<int64_t> counts(5, 0);
  for (int64_t y : labels) ++counts[static_cast<size_t>(y)];
  for (int64_t c : counts) EXPECT_EQ(c, 1);
}

TEST(ClassDistributionTest, FeatureInitDrawsFromMatchingClass) {
  Graph g = TestGraph();
  const std::vector<int64_t> labels = AllocateSyntheticLabels(g, 9);
  Rng rng(1);
  Tensor x = InitializeSyntheticFeatures(g, labels, rng);
  ASSERT_EQ(x.rows(), 9);
  ASSERT_EQ(x.cols(), g.FeatureDim());
  // Every synthetic feature must be within jitter distance of some original
  // node of the same class.
  for (int64_t s = 0; s < x.rows(); ++s) {
    float best = 1e30f;
    for (int64_t i = 0; i < g.NumNodes(); ++i) {
      if (g.labels()[static_cast<size_t>(i)] !=
          labels[static_cast<size_t>(s)]) {
        continue;
      }
      float d = 0.0f;
      for (int64_t j = 0; j < x.cols(); ++j) {
        const float diff = x.At(s, j) - g.features().At(i, j);
        d += diff * diff;
      }
      best = std::min(best, d);
    }
    EXPECT_LT(best, 0.01f);
  }
}

TEST(AdjacencyGeneratorTest, OutputSymmetricInUnitRange) {
  Rng rng(2);
  AdjacencyGenerator gen(6, 8, rng);
  Variable x = MakeConstant(rng.NormalTensor(7, 6));
  Variable a = gen.Forward(x);
  ASSERT_EQ(a->rows(), 7);
  ASSERT_EQ(a->cols(), 7);
  const Tensor& v = a->value();
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(v.At(i, j), 0.0f);
      EXPECT_LT(v.At(i, j), 1.0f);
      EXPECT_NEAR(v.At(i, j), v.At(j, i), 1e-6f);
    }
  }
}

TEST(AdjacencyGeneratorTest, GradientsFlowToFeaturesAndPhi) {
  Rng rng(3);
  AdjacencyGenerator gen(4, 6, rng);
  Variable x = MakeVariable(rng.NormalTensor(5, 4), true);
  std::vector<Variable> params = gen.Parameters();
  params.push_back(x);
  // Small eps: MLP_Φ inputs sit near ReLU kinks, so large finite-difference
  // steps are biased (numeric → analytic as eps shrinks).
  testing::ExpectGradientsMatch(
      params, [&] { return ops::SumAll(ops::Mul(gen.Forward(x),
                                                gen.Forward(x))); },
      /*eps=*/1e-3f, /*rel_tol=*/0.1f, /*abs_tol=*/5e-3f);
}

TEST(DenseOpsTest, NormalizeDenseMatchesSparsePath) {
  Rng rng(4);
  // Random symmetric nonnegative adjacency.
  Tensor a(6, 6);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = i + 1; j < 6; ++j) {
      const float v = rng.Uniform(0.0f, 1.0f);
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  const Tensor dense = NormalizeDenseAdjacency(MakeConstant(a))->value();
  const Tensor sparse =
      SymNormalize(CsrMatrix::FromDense(a), /*add_self_loops=*/true)
          .ToDense();
  EXPECT_TRUE(AllClose(dense, sparse, 1e-4f, 1e-5f));
}

TEST(DenseOpsTest, NormalizeDenseGradcheck) {
  Rng rng(5);
  Variable a = MakeVariable(rng.UniformTensor(4, 4, 0.1f, 0.9f), true);
  testing::ExpectGradientsMatch({a}, [&] {
    Variable n = NormalizeDenseAdjacency(a);
    return ops::SumAll(ops::Mul(n, n));
  });
}

TEST(DenseOpsTest, PropagateDenseDepth) {
  Tensor a = Tensor::Identity(3);
  Variable x = MakeConstant(Tensor::Ones(3, 2));
  Variable h = PropagateDense(MakeConstant(Scale(a, 2.0f)), x, 3);
  EXPECT_FLOAT_EQ(h->value().At(0, 0), 8.0f);  // (2I)³ x.
}

TEST(DenseOpsTest, ComposeDenseBlockMatchesSparseCompose) {
  Rng rng(6);
  Tensor base = rng.UniformTensor(3, 3, 0.0f, 1.0f);
  // Symmetrize.
  base = Scale(Add(base, Transpose(base)), 0.5f);
  Tensor links = rng.UniformTensor(2, 3, 0.0f, 1.0f);
  Tensor inter(2, 2);
  Variable composed = ComposeDenseBlockAdjacency(
      MakeConstant(base), MakeConstant(links), MakeConstant(inter));
  // Check the blocks.
  EXPECT_FLOAT_EQ(composed->value().At(0, 1), base.At(0, 1));
  EXPECT_FLOAT_EQ(composed->value().At(3, 2), links.At(0, 2));
  EXPECT_FLOAT_EQ(composed->value().At(2, 3), links.At(0, 2));
  EXPECT_FLOAT_EQ(composed->value().At(4, 4), 0.0f);
}

TEST(RelaySgcTest, LogitsShapeAndLinearity) {
  Rng rng(7);
  RelaySgc relay(6, 5, 3, 2, rng);
  Tensor z = rng.NormalTensor(10, 6);
  Tensor h = relay.LogitsTensor(z);
  EXPECT_EQ(h.rows(), 10);
  EXPECT_EQ(h.cols(), 3);
  // Linear model: f(2z) = 2 f(z).
  EXPECT_TRUE(AllClose(relay.LogitsTensor(Scale(z, 2.0f)), Scale(h, 2.0f),
                       1e-4f, 1e-5f));
}

TEST(RelaySgcTest, AnalyticGradientsMatchAutogradTraining) {
  // The closed-form weight gradients must equal what backprop through the
  // CE loss computes.
  Rng rng(8);
  RelaySgc relay(4, 3, 2, 2, rng);
  Tensor z = rng.NormalTensor(6, 4);
  const std::vector<int64_t> labels = {0, 1, 0, 1, 1, 0};
  const std::vector<Tensor> analytic =
      relay.WeightGradientTensors(z, labels);

  const std::vector<Variable> params = relay.Parameters();
  ZeroGradAll(params);
  Variable logits = ops::MatMul(
      ops::MatMul(MakeConstant(z), params[0]), params[1]);
  Backward(ops::SoftmaxCrossEntropy(logits, labels));
  EXPECT_TRUE(AllClose(analytic[0], params[0]->grad(), 1e-4f, 1e-6f));
  EXPECT_TRUE(AllClose(analytic[1], params[1]->grad(), 1e-4f, 1e-6f));
  ZeroGradAll(params);
}

TEST(RelaySgcTest, WeightGradientsVariableMatchesTensorPath) {
  Rng rng(9);
  RelaySgc relay(4, 3, 2, 2, rng);
  Tensor z = rng.NormalTensor(5, 4);
  const std::vector<int64_t> labels = {1, 0, 1, 0, 1};
  const std::vector<Variable> vars =
      relay.WeightGradients(MakeConstant(z), labels);
  const std::vector<Tensor> tensors = relay.WeightGradientTensors(z, labels);
  ASSERT_EQ(vars.size(), tensors.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    EXPECT_TRUE(AllClose(vars[i]->value(), tensors[i], 1e-4f, 1e-6f));
  }
}

TEST(RelaySgcTest, WeightGradientsDifferentiableWrtPropagated) {
  Rng rng(10);
  RelaySgc relay(3, 3, 2, 2, rng);
  Variable z = MakeVariable(rng.NormalTensor(4, 3), true);
  const std::vector<int64_t> labels = {0, 1, 1, 0};
  testing::ExpectGradientsMatch({z}, [&] {
    const std::vector<Variable> grads = relay.WeightGradients(z, labels);
    return ops::Add(ops::SumAll(ops::Mul(grads[0], grads[0])),
                    ops::SumAll(ops::Mul(grads[1], grads[1])));
  });
}

TEST(RelaySgcTest, TrainStepReducesLoss) {
  Rng rng(11);
  RelaySgc relay(6, 8, 3, 2, rng);
  Tensor z = rng.NormalTensor(30, 6);
  std::vector<int64_t> labels;
  for (int i = 0; i < 30; ++i) labels.push_back(i % 3);
  AdamOptimizer opt(relay.Parameters(), 0.05f);
  const float first = relay.TrainStep(z, labels, opt);
  float last = first;
  for (int i = 0; i < 50; ++i) last = relay.TrainStep(z, labels, opt);
  EXPECT_LT(last, first);
}

TEST(GradientMatchingTest, ZeroWhenIdentical) {
  Rng rng(12);
  Tensor g1 = rng.NormalTensor(4, 3);
  Tensor g2 = rng.NormalTensor(3, 2);
  Variable loss = GradientMatchingLoss(
      {g1, g2}, {MakeConstant(g1), MakeConstant(g2)});
  EXPECT_NEAR(loss->value().At(0, 0), 0.0f, 1e-4f);
}

TEST(GradientMatchingTest, MaximalWhenOpposite) {
  Rng rng(13);
  Tensor g1 = rng.NormalTensor(4, 3);
  Variable loss = GradientMatchingLoss(
      {g1}, {MakeConstant(Scale(g1, -1.0f))});
  EXPECT_NEAR(loss->value().At(0, 0), 6.0f, 1e-3f);  // 2 per column × 3.
}

TEST(MappingMatrixTest, NormalizedRowsAreSubStochastic) {
  MappingConfig config;
  MappingMatrix m(20, 5, config);
  Rng rng(14);
  m.InitializeRandom(rng);
  Tensor norm = m.NormalizedTensor();
  for (int64_t i = 0; i < 20; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_GE(norm.At(i, j), 0.0f);
      sum += norm.At(i, j);
    }
    EXPECT_LE(sum, 1.0f + 1e-4f);
    EXPECT_GT(sum, 0.9f);  // ε is tiny, so rows stay near-stochastic.
  }
}

TEST(MappingMatrixTest, NormalizedVariableMatchesTensorPath) {
  MappingConfig config;
  MappingMatrix m(10, 4, config);
  Rng rng(15);
  m.InitializeRandom(rng);
  EXPECT_TRUE(AllClose(m.Normalized()->value(), m.NormalizedTensor(),
                       1e-5f, 1e-7f));
}

TEST(MappingMatrixTest, ClassAwareInitFavorsSameClass) {
  MappingConfig config;
  MappingMatrix m(6, 4, config);
  m.InitializeClassAware({0, 0, 1, 1, -1, 0}, {0, 0, 1, 1});
  Tensor norm = m.NormalizedTensor();
  // Node 0 (class 0) weights synthetic nodes 0,1 above 2,3.
  EXPECT_GT(norm.At(0, 0), norm.At(0, 2));
  // Unlabeled node 4: uniform row.
  EXPECT_NEAR(norm.At(4, 0), norm.At(4, 3), 1e-5f);
}

TEST(MappingMatrixTest, NormalizationGradcheck) {
  MappingConfig config;
  MappingMatrix m(5, 3, config);
  Rng rng(16);
  m.InitializeRandom(rng);
  testing::ExpectGradientsMatch(m.Parameters(), [&] {
    Variable n = m.Normalized();
    return ops::SumAll(ops::Mul(n, n));
  });
}

TEST(MappingMatrixTest, SparsifyDropsBelowDelta) {
  MappingConfig config;
  MappingMatrix m(8, 4, config);
  m.InitializeClassAware({0, 0, 1, 1, 0, 1, 0, 1}, {0, 0, 1, 1});
  const Tensor norm = m.NormalizedTensor();
  // Pick a delta between the two weight levels in each row.
  const float low = norm.At(0, 2), high = norm.At(0, 0);
  ASSERT_LT(low, high);
  CsrMatrix sparse = m.Sparsify((low + high) / 2.0f);
  EXPECT_EQ(sparse.Nnz(), 8 * 2);  // Two same-class synthetic nodes per row.
}

TEST(MappingMatrixTest, EpsilonZeroesTinyWeights) {
  MappingConfig config;
  config.epsilon = 0.3f;  // Aggressive: uniform weight 1/4 < ε.
  MappingMatrix m(3, 4, config);
  m.InitializeClassAware({-1, -1, -1}, {0, 0, 1, 1});
  EXPECT_EQ(MaxAbs(m.NormalizedTensor()), 0.0f);
}

}  // namespace
}  // namespace mcond
