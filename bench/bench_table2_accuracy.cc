// Table II: inductive test accuracy of every graph-reduction method under
// graph-batch and node-batch settings, at the two reduction ratios per
// dataset. Columns mirror the paper: Whole (O→O), coresets + VNG + MCond_OS
// (O→S), GCond + MCond_SO (S→O), MCond_SS (S→S).
#include <iostream>

#include "common.h"

int main() {
  using namespace mcond;
  using namespace mcond::bench;
  const BenchContext ctx = GetBenchContext();
  std::cout << "=== Table II: inductive inference accuracy (%) ===\n";

  for (const std::string& name : ctx.datasets) {
    const DatasetSpec spec = SpecForBench(name, ctx);
    for (double ratio : spec.reduction_ratios) {
      std::vector<std::vector<MethodResult>> per_seed;
      for (int64_t s = 0; s < ctx.seeds; ++s) {
        per_seed.push_back(RunMethodSuite(spec, ratio, 100 + s));
      }
      const std::vector<SuiteAggregate> agg = AggregateSuites(per_seed);

      std::cout << "\n--- " << spec.name << ", r=" << FormatFloat(ratio * 100, 2)
                << "% (" << ctx.seeds << " seeds) ---\n";
      ResultTable table({"method", "graph batch", "node batch"});
      for (const SuiteAggregate& a : agg) {
        table.AddRow({a.method, FormatAccuracy(a.graph_acc),
                      FormatAccuracy(a.node_acc)});
      }
      table.Print();
    }
  }
  return 0;
}
