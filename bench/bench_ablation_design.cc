// Engineering-choice ablations for the scaled-down deviations DESIGN.md §3b
// documents: mapping learning rate, relay refinement before mapping phases,
// and class-aware initialization, measured by MCond_OS / MCond_SS node-batch
// accuracy on the Reddit stand-in (the configuration most sensitive to all
// three).
#include <iostream>

#include "common.h"

namespace {

using namespace mcond;
using namespace mcond::bench;

struct Cell {
  const char* label;
  float lr_mapping;
  int64_t relay_refinement;
  bool class_aware;
};

}  // namespace

int main() {
  const BenchContext ctx = GetBenchContext();
  const DatasetSpec spec = SpecForBench("reddit-sim", ctx);
  const double ratio = spec.reduction_ratios.front();
  std::cout << "=== Design ablations (DESIGN.md §3b) on " << spec.name
            << ", r=" << FormatFloat(ratio * 100, 2) << "% ===\n";

  InductiveDataset data = MakeDataset(spec, 1100);
  const int64_t n_syn = SyntheticNodeCount(data.train_graph, ratio);
  std::unique_ptr<GnnModel> model_o =
      TrainSgcOn(data.train_graph, 1101, ctx.fast ? 60 : 200);

  const Cell cells[] = {
      {"defaults", 0.01f, 60, true},
      {"paper lr 0.1", 0.1f, 60, true},
      {"no relay refinement", 0.01f, 0, true},
      {"random M init", 0.01f, 60, false},
  };

  ResultTable table({"variant", "OS acc", "SS acc", "map nnz"});
  for (const Cell& cell : cells) {
    MCondConfig config = ConfigForDataset(spec, ctx.fast);
    config.lr_mapping = cell.lr_mapping;
    config.relay_refinement_steps = cell.relay_refinement;
    config.class_aware_init = cell.class_aware;
    MCondResult mcond =
        RunMCond(data.train_graph, data.val, n_syn, config, 1100);
    Rng rng(1102);
    const double os =
        ServeOnCondensed(*model_o, mcond.condensed, data.test, false, rng, 1)
            .accuracy;
    std::unique_ptr<GnnModel> model_s =
        TrainSgcOn(mcond.condensed.graph, 1103, ctx.fast ? 100 : 300);
    const double ss =
        ServeOnCondensed(*model_s, mcond.condensed, data.test, false, rng, 1)
            .accuracy;
    table.AddRow({cell.label, FormatFloat(os * 100, 2),
                  FormatFloat(ss * 100, 2),
                  std::to_string(mcond.condensed.mapping.Nnz())});
  }
  table.Print();
  std::cout << "\nExpected: defaults dominate; the paper's full-scale lr "
               "(0.1) and disabling refinement both erode the mapping's "
               "class structure at this step budget; random init recovers "
               "only partially (Fig. 5c).\n";
  return 0;
}
