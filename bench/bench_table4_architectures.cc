// Table IV: generalizability of the synthetic graph and mapping across GNN
// architectures. Each architecture is trained on MCond's synthetic graph
// and then serves inductive nodes on the original graph (MCond_SO) and on
// the synthetic graph via the mapping (MCond_SS); accuracy and inference
// time are reported for both batch settings.
#include <iostream>

#include "common.h"

int main() {
  using namespace mcond;
  using namespace mcond::bench;
  const BenchContext ctx = GetBenchContext();
  std::cout << "=== Table IV: accuracy (%) and inference time (ms) across "
               "GNN architectures ===\n";

  const GnnArch archs[] = {GnnArch::kGcn, GnnArch::kGraphSage,
                           GnnArch::kAppnp, GnnArch::kCheby};
  for (const std::string& name : ctx.datasets) {
    const DatasetSpec spec = SpecForBench(name, ctx);
    const double ratio = (spec.name == "reddit-sim")
                             ? spec.reduction_ratios.front()
                             : spec.reduction_ratios.back();
    InductiveDataset data = MakeDataset(spec, 600);
    const int64_t n_syn = SyntheticNodeCount(data.train_graph, ratio);
    MCondConfig config = ConfigForDataset(spec, ctx.fast);
    MCondResult mcond =
        RunMCond(data.train_graph, data.val, n_syn, config, 600);

    std::cout << "\n--- " << spec.name << " (r="
              << FormatFloat(ratio * 100, 2) << "%) ---\n";
    ResultTable table({"arch", "batch", "SO acc", "SO ms", "SS acc",
                       "SS ms"});
    for (GnnArch arch : archs) {
      std::unique_ptr<GnnModel> model = TrainGnnOn(
          mcond.condensed.graph, arch, 601, ctx.fast ? 80 : 300);
      Rng rng(602);
      for (bool graph_batch : {true, false}) {
        InferenceResult so = ServeOnOriginal(*model, data.train_graph,
                                             data.test, graph_batch, rng, 3);
        InferenceResult ss = ServeOnCondensed(*model, mcond.condensed,
                                              data.test, graph_batch, rng, 3);
        table.AddRow({GnnArchName(arch), graph_batch ? "Graph" : "Node",
                      FormatFloat(so.accuracy * 100, 2),
                      FormatMillis(so.seconds),
                      FormatFloat(ss.accuracy * 100, 2),
                      FormatMillis(ss.seconds)});
      }
    }
    table.Print();
  }
  return 0;
}
