// Fig. 7: hyper-parameter sensitivity of MCond_OS on the Flickr stand-in
// (node batch) — test accuracy as the structure-loss weight λ and the
// inductive-loss weight β sweep over the paper's grid.
#include <iostream>

#include "common.h"

namespace {

using namespace mcond;
using namespace mcond::bench;

double RunWith(const DatasetSpec& spec, const InductiveDataset& data,
               GnnModel& model_o, double ratio, float lambda, float beta,
               bool fast, uint64_t seed) {
  const int64_t n_syn = SyntheticNodeCount(data.train_graph, ratio);
  MCondConfig config = ConfigForDataset(spec, fast);
  // Keep sweeps affordable: the sensitivity *shape* stabilizes within a
  // few rounds.
  config.outer_rounds = std::max<int64_t>(2, config.outer_rounds / 2);
  config.lambda = lambda;
  config.beta = beta;
  MCondResult mcond =
      RunMCond(data.train_graph, data.val, n_syn, config, seed);
  Rng rng(seed + 1);
  return ServeOnCondensed(model_o, mcond.condensed, data.test, false, rng, 1)
      .accuracy;
}

}  // namespace

int main() {
  const BenchContext ctx = GetBenchContext();
  const DatasetSpec spec = SpecForBench("flickr-sim", ctx);
  const double ratio = spec.reduction_ratios.back();
  std::cout << "=== Fig. 7: λ / β sensitivity (" << spec.name
            << ", r=" << FormatFloat(ratio * 100, 2)
            << "%, MCond_OS node batch) ===\n";

  InductiveDataset data = MakeDataset(spec, 1000);
  std::unique_ptr<GnnModel> model_o =
      TrainSgcOn(data.train_graph, 1001, ctx.fast ? 60 : 200);

  {
    ResultTable table({"lambda", "accuracy(%)"});
    for (float lambda : {0.0f, 0.01f, 0.1f, 1.0f, 10.0f}) {
      const double acc = RunWith(spec, data, *model_o, ratio, lambda,
                                 /*beta=*/100.0f, ctx.fast, 1002);
      table.AddRow({FormatFloat(lambda, 2), FormatFloat(acc * 100, 2)});
    }
    std::cout << "\nλ sweep (β fixed at 100):\n";
    table.Print();
  }
  {
    ResultTable table({"beta", "accuracy(%)"});
    for (float beta : {0.0f, 1.0f, 10.0f, 100.0f, 1000.0f}) {
      const double acc = RunWith(spec, data, *model_o, ratio,
                                 /*lambda=*/0.05f, beta, ctx.fast, 1003);
      table.AddRow({FormatFloat(beta, 0), FormatFloat(acc * 100, 2)});
    }
    std::cout << "\nβ sweep (λ fixed at 0.05):\n";
    table.Print();
  }
  std::cout << "\nExpected shape (paper Fig. 7): best λ in [0.01, 0.1]; "
               "moderate-to-large β (≈100) helps, extremes hurt.\n";
  return 0;
}
