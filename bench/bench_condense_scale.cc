// Out-of-core condensation at scale: generates a multi-million-node DC-SBM
// graph (reddit-xl-sim) straight into the sharded segment store and runs a
// GCond-mode condense round under an explicit memory budget, reporting
// nodes/sec and the kernel-maintained peak RSS against the footprint the
// resident-CSR path would have needed (docs/performance.md, "Out-of-core
// condensation").
//
// Modes:
//   bench_condense_scale --smoke
//       Prints resident_<tag> / streamed_<tag> bit-level digest pairs for
//       every streamed kernel plus one full condense round on a small graph
//       forced into >= 4 segments. tools/check_determinism.sh diffs the
//       output between MCOND_NUM_THREADS=1 and N and pair-checks each
//       streamed digest against its resident twin.
//   bench_condense_scale --one <nodes> <budget_mb> [prefetch]
//       Runs one generate+condense at the given budget in THIS process and
//       prints a single machine-readable ROW line. Peak RSS (VmHWM) is
//       monotone per process, so --json runs each budget in a child. The
//       optional prefetch arg pins the segment-prefetch depth (default:
//       ambient MCOND_PREFETCH_SEGMENTS); store files are fadvise-dropped
//       from the page cache between generation and condense so the condense
//       phase does cold reads — the workload prefetch exists for.
//   bench_condense_scale --json [nodes]
//       Spawns --one for budgets {unbounded, 512, 128}, the budgeted rows
//       both with prefetch off and on, and emits the BENCH_condense.json
//       document on stdout.
#include <fcntl.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "condense/mcond.h"
#include "core/parallel.h"
#include "core/segment_prefetcher.h"
#include "core/simd.h"
#include "core/tensor_ops.h"
#include "data/synthetic.h"
#include "graph/inductive.h"
#include "graph/sharded_ops.h"
#include "obs/resource.h"

namespace mcond {
namespace {

// FNV-1a over raw float bit patterns: any single-ULP difference between the
// resident and streamed paths flips the digest.
void HashBits(uint64_t* h, const float* data, int64_t count) {
  for (int64_t i = 0; i < count; ++i) {
    uint32_t bits;
    std::memcpy(&bits, &data[i], sizeof(bits));
    for (int b = 0; b < 4; ++b) {
      *h ^= (bits >> (8 * b)) & 0xffu;
      *h *= 1099511628211ull;
    }
  }
}

uint64_t BitChecksum(const Tensor& t) {
  uint64_t h = 1469598103934665603ull;
  HashBits(&h, t.data(), t.size());
  return h;
}

uint64_t BitChecksum(const std::vector<float>& v) {
  uint64_t h = 1469598103934665603ull;
  HashBits(&h, v.data(), static_cast<int64_t>(v.size()));
  return h;
}

uint64_t CondenseDigest(const MCondResult& r) {
  uint64_t h = 1469598103934665603ull;
  HashBits(&h, r.synthetic_features.data(), r.synthetic_features.size());
  HashBits(&h, r.dense_adjacency.data(), r.dense_adjacency.size());
  HashBits(&h, r.s_loss_history.data(),
           static_cast<int64_t>(r.s_loss_history.size()));
  return h;
}

std::string ScratchDir(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("mcond_condense_scale_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

// ---------------------------------------------------------------------------
// --smoke: streamed-vs-resident digest pairs for check_determinism.sh.
// ---------------------------------------------------------------------------

int RunSmoke() {
  // Same contract as bench_kernels --smoke: digests are defined on the
  // exact-oracle scalar tier unless an explicit MCOND_SIMD asks for the
  // vector tier's own cross-width check.
  if (std::getenv("MCOND_SIMD") == nullptr) {
    simd::SetTier(simd::Tier::kScalar);
  }
  std::printf("threads %d\n", ThreadPool::Global().NumThreads());
  std::printf("simd %s\n", simd::TierName(simd::ActiveTier()));
  std::printf("prefetch %" PRId64 "\n", PrefetchSegments());

  SbmConfig config;
  config.num_nodes = 140;
  config.num_classes = 3;
  config.feature_dim = 12;
  config.avg_degree = 6.0;
  Rng rng(21);
  const Graph full = GenerateSbmGraph(config, rng);
  InductiveDataset split = MakeInductiveSplit(full, 0.15, 0.15, rng);
  const Graph& train = split.train_graph;

  const std::string dir = ScratchDir("smoke");
  ShardOptions options;
  options.max_rows_per_segment = std::max<int64_t>(1, train.NumNodes() / 4);
  StatusOr<ShardedGraph> sharded =
      ShardGraph(train, dir, options, /*mem_budget_bytes=*/4096);
  if (!sharded.ok()) {
    std::fprintf(stderr, "shard: %s\n", sharded.status().ToString().c_str());
    return 1;
  }

  std::printf("resident_sym_normalize %016" PRIx64 "\n",
              BitChecksum(train.normalized_adjacency().values()));
  std::printf("streamed_sym_normalize %016" PRIx64 "\n",
              [&] {
                uint64_t h = 1469598103934665603ull;
                const ShardedCsr& norm = *sharded.value().normalized;
                SequentialCursor cursor(norm);
                for (int64_t s = 0; s < norm.NumSegments(); ++s) {
                  StatusOr<PinnedSegment> pin = cursor.Next();
                  MCOND_CHECK(pin.ok());
                  HashBits(&h, pin.value().values(), pin.value().view().nnz);
                }
                return h;
              }());

  std::printf("resident_spmm %016" PRIx64 "\n",
              BitChecksum(train.normalized_adjacency().SpMM(train.features())));
  StatusOr<Tensor> spmm =
      ShardedSpMM(*sharded.value().normalized, train.features());
  MCOND_CHECK(spmm.ok());
  std::printf("streamed_spmm %016" PRIx64 "\n", BitChecksum(spmm.value()));

  std::printf("resident_rowsums %016" PRIx64 "\n",
              BitChecksum(train.adjacency().RowSums()));
  StatusOr<std::vector<float>> sums = ShardedRowSums(*sharded.value().adjacency);
  MCOND_CHECK(sums.ok());
  std::printf("streamed_rowsums %016" PRIx64 "\n", BitChecksum(sums.value()));

  const std::vector<int64_t> keep = train.LabeledNodes();
  Tensor prop = train.features();
  for (int i = 0; i < 2; ++i) prop = train.normalized_adjacency().SpMM(prop);
  std::printf("resident_propagate %016" PRIx64 "\n",
              BitChecksum(GatherRows(prop, keep)));
  StatusOr<Tensor> sprop =
      ShardedPropagate(*sharded.value().normalized, train.features(), 2, keep);
  MCOND_CHECK(sprop.ok());
  std::printf("streamed_propagate %016" PRIx64 "\n",
              BitChecksum(sprop.value()));

  MCondConfig mc;
  mc.outer_rounds = 1;
  mc.s_steps_per_round = 2;
  mc.m_steps_per_round = 2;
  mc.relay_refinement_steps = 2;
  mc.edge_batch = 16;
  std::printf("resident_condense %016" PRIx64 "\n",
              CondenseDigest(RunMCond(train, split.val, 9, mc, 77)));
  std::printf("streamed_condense %016" PRIx64 "\n",
              CondenseDigest(RunMCondSharded(sharded.value(), split.val, 9,
                                             mc, 77)));

  sharded = ShardedGraph{};  // Close stores before removing the directory.
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}

// ---------------------------------------------------------------------------
// --one: one budgeted generate+condense in this process (clean VmHWM).
// ---------------------------------------------------------------------------

// reddit-xl-sim: million-node scale with Reddit-like density so the segment
// store, not the resident feature matrix, dominates the footprint.
SbmConfig XlConfig(int64_t nodes) {
  SbmConfig config;
  config.num_nodes = nodes;
  config.num_classes = 8;
  config.feature_dim = 16;
  config.avg_degree = 96.0;
  config.label_rate = 0.1;
  return config;
}

// A small synthetic held-out batch: RunMCondSharded requires one, but the
// GCond-mode (learn_mapping=false) XL run never composes it.
HeldOutBatch MakeSupportBatch(int64_t n_orig, int64_t num_classes,
                              int64_t dim, Rng& rng) {
  HeldOutBatch batch;
  const int64_t n_sup = 64;
  batch.features = rng.NormalTensor(n_sup, dim);
  std::vector<Triplet> links, inter;
  for (int64_t i = 0; i < n_sup; ++i) {
    batch.labels.push_back(
        static_cast<int64_t>(rng.Uniform(0.0f, 1.0f) * num_classes) %
        num_classes);
    for (int k = 0; k < 4; ++k) {
      links.push_back(
          {i, static_cast<int64_t>(rng.Uniform(0.0f, 1.0f) * n_orig) % n_orig,
           1.0f});
    }
    if (i + 1 < n_sup) {
      inter.push_back({i, i + 1, 1.0f});
      inter.push_back({i + 1, i, 1.0f});
    }
  }
  batch.links = CsrMatrix::FromTriplets(n_sup, n_orig, links);
  batch.inter = CsrMatrix::FromTriplets(n_sup, n_sup, inter);
  return batch;
}

// Best-effort drop of `path` from the page cache (dirty pages are synced
// first — DONTNEED skips them otherwise). Pages a store still has mapped
// stay resident; freshly written, unmapped store files go cold, which is
// the state a real multi-pass condense starts each pass from.
void DropPageCache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

int RunOne(int64_t nodes, int64_t budget_mb, int64_t prefetch) {
  if (prefetch >= 0) SetPrefetchSegments(prefetch);
  const SbmConfig config = XlConfig(nodes);
  const std::string dir = ScratchDir("b" + std::to_string(budget_mb) + "_p" +
                                     std::to_string(PrefetchSegments()));
  const int64_t budget_bytes = budget_mb << 20;

  Rng rng(17);
  const auto t0 = std::chrono::steady_clock::now();
  StatusOr<ShardedGraph> graph =
      GenerateSbmGraphSharded(config, rng, dir, ShardOptions(), budget_bytes);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  DropPageCache(graph.value().adjacency->path());
  DropPageCache(graph.value().normalized->path());
  const auto t1 = std::chrono::steady_clock::now();

  Rng sup_rng(5);
  const HeldOutBatch support =
      MakeSupportBatch(nodes, config.num_classes, config.feature_dim, sup_rng);

  MCondConfig mc;
  mc.learn_mapping = false;  // GCond mode: no N x N' mapping state at XL.
  mc.outer_rounds = 1;
  mc.s_steps_per_round = 3;
  mc.relay_refinement_steps = 5;
  mc.edge_batch = 256;
  const MCondResult result =
      RunMCondSharded(graph.value(), support, 128, mc, 7);
  const auto t2 = std::chrono::steady_clock::now();
  MCOND_CHECK_EQ(result.synthetic_features.rows(), 128);

  const ShardedGraph& g = graph.value();
  const int64_t nnz = g.adjacency->Nnz();
  // What the resident path would have held: adjacency + normalized CSRs
  // (row_ptr i64 + col i32 + val f32 each) plus features and labels.
  const int64_t resident_footprint =
      2 * ((nodes + 1) * 8 + nnz * (4 + 4)) +
      g.features.rows() * g.features.cols() * 4 + nodes * 8;
  const int64_t store_bytes =
      g.adjacency->StorageBytes() + g.normalized->StorageBytes();
  const double gen_sec = std::chrono::duration<double>(t1 - t0).count();
  const double condense_sec = std::chrono::duration<double>(t2 - t1).count();

  std::printf("ROW nodes=%" PRId64 " budget_mb=%" PRId64 " prefetch=%" PRId64
              " nnz=%" PRId64
              " segments=%" PRId64 " gen_sec=%.2f condense_sec=%.2f"
              " nodes_per_sec=%.1f peak_rss_bytes=%" PRId64
              " resident_footprint_bytes=%" PRId64 " store_bytes=%" PRId64
              "\n",
              nodes, budget_mb, PrefetchSegments(), nnz,
              g.adjacency->NumSegments() + g.normalized->NumSegments(),
              gen_sec, condense_sec, nodes / condense_sec,
              obs::PeakRssBytes(), resident_footprint, store_bytes);

  graph = ShardedGraph{};  // Close stores before removing the directory.
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}

// ---------------------------------------------------------------------------
// --json: one child per budget so each row gets an uncontaminated VmHWM.
// ---------------------------------------------------------------------------

int RunJson(const char* self, int64_t nodes) {
  // The budgeted rows run with prefetch off and on so the baseline captures
  // the overlap win on the same host; the unbounded row keeps the default
  // depth (prefetch is near-neutral when nothing is ever evicted).
  struct Case {
    int64_t budget_mb;
    int64_t prefetch;
  };
  const Case cases[] = {{0, 2}, {512, 0}, {512, 2}, {128, 0}, {128, 2}};
  std::vector<std::string> rows;
  for (const Case& c : cases) {
    const std::string cmd = std::string(self) + " --one " +
                            std::to_string(nodes) + " " +
                            std::to_string(c.budget_mb) + " " +
                            std::to_string(c.prefetch);
    std::fprintf(stderr, "running: %s\n", cmd.c_str());
    FILE* pipe = ::popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
      std::fprintf(stderr, "popen failed\n");
      return 1;
    }
    char line[1024];
    std::string row;
    while (std::fgets(line, sizeof(line), pipe) != nullptr) {
      if (std::strncmp(line, "ROW ", 4) == 0) row = line;
      std::fputs(line, stderr);
    }
    if (::pclose(pipe) != 0 || row.empty()) {
      std::fprintf(stderr, "budget %" PRId64 " prefetch %" PRId64
                   " run failed\n", c.budget_mb, c.prefetch);
      return 1;
    }
    rows.push_back(row);
  }

  auto field = [](const std::string& row, const char* key) {
    const std::string needle = std::string(key) + "=";
    const size_t at = row.find(needle);
    MCOND_CHECK(at != std::string::npos) << key;
    const size_t begin = at + needle.size();
    const size_t end = row.find_first_of(" \n", begin);
    return row.substr(begin, end == std::string::npos ? end : end - begin);
  };

  std::printf("{\n");
  std::printf(
      "  \"note\": \"Out-of-core condensation baseline: reddit-xl-sim "
      "(DC-SBM) generated straight into the sharded segment store, then one "
      "GCond-mode condense round (learn_mapping=false) under each mmap "
      "budget. peak_rss_bytes is VmHWM measured in a per-budget child "
      "process; resident_footprint_bytes is what the resident-CSR path "
      "would hold (adjacency + normalized + features + labels). The "
      "acceptance gate is peak_rss_bytes < resident_footprint_bytes on the "
      "budgeted rows. Budgeted rows run with segment prefetch off "
      "(prefetch=0) and on (prefetch=2, double buffering) over fadvise-"
      "cooled store files; prefetch changes wall-clock only — results are "
      "bit-identical at every depth. Streamed kernels are bit-identical to "
      "resident (ctest check_determinism + sharded_condense_test).\",\n");
  std::printf("  \"context\": {\"num_cpus\": %ld, \"threads\": %d},\n",
              ::sysconf(_SC_NPROCESSORS_ONLN),
              ThreadPool::Global().NumThreads());
  std::printf("  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const std::string& r = rows[i];
    const std::string budget = field(r, "budget_mb");
    const std::string prefetch = field(r, "prefetch");
    std::printf(
        "    {\"name\": \"condense_xl/budget_%s_mb/prefetch_%s\", "
        "\"nodes\": %s, \"prefetch\": %s, "
        "\"nnz\": %s, \"gen_sec\": %s, \"condense_sec\": %s, "
        "\"nodes_per_sec\": %s, \"peak_rss_bytes\": %s, "
        "\"resident_footprint_bytes\": %s, \"store_bytes\": %s}%s\n",
        budget == "0" ? "unbounded" : budget.c_str(), prefetch.c_str(),
        field(r, "nodes").c_str(), prefetch.c_str(), field(r, "nnz").c_str(),
        field(r, "gen_sec").c_str(), field(r, "condense_sec").c_str(),
        field(r, "nodes_per_sec").c_str(), field(r, "peak_rss_bytes").c_str(),
        field(r, "resident_footprint_bytes").c_str(),
        field(r, "store_bytes").c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace mcond

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return mcond::RunSmoke();
    if (std::strcmp(argv[i], "--one") == 0 && i + 2 < argc) {
      const int64_t prefetch = (i + 3 < argc) ? std::atoll(argv[i + 3]) : -1;
      return mcond::RunOne(std::atoll(argv[i + 1]), std::atoll(argv[i + 2]),
                           prefetch);
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      const int64_t nodes =
          (i + 1 < argc) ? std::atoll(argv[i + 1]) : (int64_t{1} << 20);
      return mcond::RunJson(argv[0], nodes);
    }
  }
  std::fprintf(stderr,
               "usage: %s --smoke | --one <nodes> <budget_mb> [prefetch] | "
               "--json [nodes]\n",
               argv[0]);
  return 2;
}
