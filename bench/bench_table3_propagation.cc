// Table III: label propagation (LP) and error propagation (EP) calibration
// on the original (O) vs synthetic (S) deployed graphs, with per-pass
// propagation time. Shows the learned A' and aM capture real structural
// signal: LP/EP on S improves over vanilla while propagating over a graph
// orders of magnitude smaller.
#include <chrono>
#include <iostream>

#include "common.h"
#include "core/tensor_ops.h"
#include "nn/metrics.h"
#include "propagation/error_propagation.h"
#include "propagation/label_propagation.h"

namespace {

using namespace mcond;
using namespace mcond::bench;
using Clock = std::chrono::steady_clock;

struct CalibrationRow {
  double vanilla = 0.0;
  double lp = 0.0;
  double ep = 0.0;
  double prop_ms = 0.0;
};

/// Runs vanilla / LP / EP on one composed deployment.
CalibrationRow Calibrate(GnnModel& model, const Deployment& dep,
                         const std::vector<int64_t>& batch_labels,
                         int64_t num_classes, Rng& rng) {
  CalibrationRow row;
  const Tensor full_logits =
      model.Predict(dep.operators, dep.features, rng);
  const Tensor batch_logits =
      SliceRows(full_logits, dep.num_base, dep.num_base + dep.batch_size);
  row.vanilla = AccuracyFromLogits(batch_logits, batch_labels);

  // LP: propagate the known (base) labels to the batch. Time the
  // propagation only, as the paper does.
  const Tensor seed = OneHot(dep.known_labels, num_classes);
  const auto lp_start = Clock::now();
  const Tensor lp_scores =
      LabelPropagation(dep.operators.gcn_norm, seed, 0.9f, 20);
  const auto lp_end = Clock::now();
  row.lp = AccuracyFromLogits(
      SliceRows(lp_scores, dep.num_base, dep.num_base + dep.batch_size),
      batch_labels);

  // EP: diffuse the model's residual on known nodes, correct the batch.
  const auto ep_start = Clock::now();
  const Tensor ep_scores = ErrorPropagation(
      dep.operators.gcn_norm, full_logits, dep.known_labels, 0.9f, 20, 1.0f);
  const auto ep_end = Clock::now();
  row.ep = AccuracyFromLogits(
      SliceRows(ep_scores, dep.num_base, dep.num_base + dep.batch_size),
      batch_labels);

  row.prop_ms =
      (std::chrono::duration<double>(lp_end - lp_start).count() +
       std::chrono::duration<double>(ep_end - ep_start).count()) /
      2.0 * 1000.0;
  return row;
}

}  // namespace

int main() {
  const BenchContext ctx = GetBenchContext();
  std::cout << "=== Table III: LP / EP calibration on O vs S ===\n";
  // The paper evaluates Pubmed at its larger r, Flickr at its larger r,
  // Reddit at its smaller r.
  for (const std::string& name : ctx.datasets) {
    const DatasetSpec spec = SpecForBench(name, ctx);
    const double ratio = (spec.name == "reddit-sim")
                             ? spec.reduction_ratios.front()
                             : spec.reduction_ratios.back();
    InductiveDataset data = MakeDataset(spec, 500);
    const int64_t n_syn = SyntheticNodeCount(data.train_graph, ratio);
    MCondConfig config = ConfigForDataset(spec, ctx.fast);
    MCondResult mcond =
        RunMCond(data.train_graph, data.val, n_syn, config, 500);
    // Same S-trained GNN deployed on both graphs (the paper's protocol).
    std::unique_ptr<GnnModel> model =
        TrainSgcOn(mcond.condensed.graph, 501, ctx.fast ? 100 : 300);
    Rng rng(502);

    std::cout << "\n--- " << spec.name << " (r="
              << FormatFloat(ratio * 100, 2) << "%) ---\n";
    ResultTable table(
        {"batch", "graph", "vanilla", "LP", "EP", "time(ms)"});
    // The aM conversion depends only on the links, not on the batch mode —
    // run it once and share it across both deployments.
    const CsrMatrix converted =
        CsrMatrix::Multiply(data.test.links, mcond.condensed.mapping);
    for (bool graph_batch : {true, false}) {
      Deployment dep_o =
          ComposeDeployment(data.train_graph, data.test, graph_batch);
      Deployment dep_s = ComposeDeployment(mcond.condensed, converted,
                                           data.test, graph_batch);
      const CalibrationRow row_o =
          Calibrate(*model, dep_o, data.test.labels,
                    data.train_graph.num_classes(), rng);
      const CalibrationRow row_s =
          Calibrate(*model, dep_s, data.test.labels,
                    data.train_graph.num_classes(), rng);
      const std::string batch_name = graph_batch ? "Graph" : "Node";
      table.AddRow({batch_name, "O", FormatFloat(row_o.vanilla * 100, 2),
                    FormatFloat(row_o.lp * 100, 2),
                    FormatFloat(row_o.ep * 100, 2),
                    FormatFloat(row_o.prop_ms, 2)});
      table.AddRow({batch_name, "S", FormatFloat(row_s.vanilla * 100, 2),
                    FormatFloat(row_s.lp * 100, 2),
                    FormatFloat(row_s.ep * 100, 2),
                    FormatFloat(row_s.prop_ms, 2) + " (" +
                        FormatRatio(row_o.prop_ms / row_s.prop_ms) + ")"});
    }
    table.Print();
  }
  return 0;
}
