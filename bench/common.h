#ifndef MCOND_BENCH_COMMON_H_
#define MCOND_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "condense/gcond.h"
#include "condense/mcond.h"
#include "data/datasets.h"
#include "eval/inference.h"
#include "eval/experiment.h"
#include "nn/trainer.h"

namespace mcond {
namespace bench {

/// Global bench knobs. Set MCOND_BENCH_FAST=1 to shrink every experiment to
/// a smoke-test scale (tiny dataset, few rounds, one seed) for quick
/// iteration; the full runs regenerate the paper-scale tables.
struct BenchContext {
  bool fast = false;
  /// Seeds per accuracy cell ("repeat 5 times" in the paper; scaled down).
  int64_t seeds = 2;
  std::vector<std::string> datasets = {"pubmed-sim", "flickr-sim",
                                       "reddit-sim"};
};

BenchContext GetBenchContext();

/// MCond hyper-parameters tuned per dataset (epochs from the spec; λ/β in
/// the paper's grid-searched region).
MCondConfig ConfigForDataset(const DatasetSpec& spec, bool fast);

/// Trains a fresh SGC on the given deployed graph over its labeled nodes.
std::unique_ptr<GnnModel> TrainSgcOn(const Graph& graph, uint64_t seed,
                                     int64_t epochs);

/// Trains an arbitrary architecture on a deployed graph.
std::unique_ptr<GnnModel> TrainGnnOn(const Graph& graph, GnnArch arch,
                                     uint64_t seed, int64_t epochs);

/// One method's serving numbers in both batch settings.
struct Serving {
  double accuracy = 0.0;
  double seconds = 0.0;
  int64_t memory_bytes = 0;
};

struct MethodResult {
  std::string method;
  Serving graph_batch;
  Serving node_batch;
};

/// Runs the entire Table II / Fig. 3 / Fig. 4 method suite for one
/// (dataset, reduction ratio, seed): Whole, the four coresets, VNG,
/// MCond_OS, GCond (S→O), MCond_SO, MCond_SS.
/// `epochs_scale` shrinks the condensation budget; timing-oriented benches
/// (Fig. 3/4) use ~0.5 since serving latency and memory depend on artifact
/// *shape*, not on how converged the accuracy is.
std::vector<MethodResult> RunMethodSuite(const DatasetSpec& spec,
                                         double ratio, uint64_t seed,
                                         double epochs_scale = 1.0);

/// Convenience: spec lookup that honors fast mode by substituting tiny-sim.
DatasetSpec SpecForBench(const std::string& name, const BenchContext& ctx);

/// Accuracy across seeds for a named method, grouped out of per-seed suite
/// runs.
struct SuiteAggregate {
  std::string method;
  MeanStd graph_acc;
  MeanStd node_acc;
  // Timing/memory from the last seed (timings are stable across seeds).
  Serving graph_serving;
  Serving node_serving;
};

std::vector<SuiteAggregate> AggregateSuites(
    const std::vector<std::vector<MethodResult>>& per_seed);

}  // namespace bench
}  // namespace mcond

#endif  // MCOND_BENCH_COMMON_H_
