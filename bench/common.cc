#include "common.h"

#include <cstdlib>
#include <numeric>

#include "coreset/coreset.h"
#include "vng/vng.h"

namespace mcond {
namespace bench {

BenchContext GetBenchContext() {
  BenchContext ctx;
  const char* fast = std::getenv("MCOND_BENCH_FAST");
  if (fast != nullptr && std::string(fast) != "0") {
    ctx.fast = true;
    ctx.seeds = 1;
    ctx.datasets = {"tiny-sim"};
  }
  return ctx;
}

DatasetSpec SpecForBench(const std::string& name, const BenchContext& ctx) {
  return FindDatasetSpec(ctx.fast ? "tiny-sim" : name).value();
}

MCondConfig ConfigForDataset(const DatasetSpec& spec, bool fast) {
  MCondConfig config;
  // Per-dataset mapping hyper-parameters, the analogue of the paper's grid
  // search: Pubmed's sparse labels leave most mapping rows without a
  // class-aware prior, so M needs a higher learning rate and more steps to
  // learn those rows from ℒ_tra/ℒ_ind alone; the fully-labeled datasets
  // start from a strong prior and prefer gentle refinement.
  if (spec.name == "pubmed-sim") {
    config.lr_mapping = 0.1f;
    config.m_steps_per_round = 30;
  }
  const int64_t steps_per_round =
      config.s_steps_per_round + config.m_steps_per_round;
  config.outer_rounds = std::max<int64_t>(
      1, spec.condensation_epochs /
             std::max<int64_t>(steps_per_round, 15));
  if (fast) config.outer_rounds = std::min<int64_t>(config.outer_rounds, 2);
  return config;
}

std::unique_ptr<GnnModel> TrainSgcOn(const Graph& graph, uint64_t seed,
                                     int64_t epochs) {
  return TrainGnnOn(graph, GnnArch::kSgc, seed, epochs);
}

std::unique_ptr<GnnModel> TrainGnnOn(const Graph& graph, GnnArch arch,
                                     uint64_t seed, int64_t epochs) {
  Rng rng(seed);
  GnnConfig gc;
  std::unique_ptr<GnnModel> model =
      MakeGnn(arch, graph.FeatureDim(), graph.num_classes(), gc, rng);
  GraphOperators ops_ctx = GraphOperators::FromGraph(graph);
  TrainConfig tc;
  tc.epochs = epochs;
  tc.lr = 0.01f;
  tc.weight_decay = 5e-4f;
  TrainNodeClassifier(*model, ops_ctx, graph.features(), graph.labels(),
                      graph.LabeledNodes(), tc, rng);
  return model;
}

namespace {

Serving ToServing(const InferenceResult& r) {
  return Serving{r.accuracy, r.seconds, r.memory_bytes};
}

MethodResult ServeBothBatches(const std::string& method, GnnModel& model,
                              const Graph& deployed_original,
                              const CondensedGraph* condensed,
                              const HeldOutBatch& test, Rng& rng,
                              int64_t repeats) {
  MethodResult out;
  out.method = method;
  if (condensed != nullptr) {
    out.graph_batch = ToServing(
        ServeOnCondensed(model, *condensed, test, true, rng, repeats));
    out.node_batch = ToServing(
        ServeOnCondensed(model, *condensed, test, false, rng, repeats));
  } else {
    out.graph_batch = ToServing(
        ServeOnOriginal(model, deployed_original, test, true, rng, repeats));
    out.node_batch = ToServing(
        ServeOnOriginal(model, deployed_original, test, false, rng, repeats));
  }
  return out;
}

}  // namespace

std::vector<MethodResult> RunMethodSuite(const DatasetSpec& spec,
                                         double ratio, uint64_t seed,
                                         double epochs_scale) {
  const BenchContext ctx = GetBenchContext();
  DatasetSpec scaled_spec = spec;
  scaled_spec.condensation_epochs = std::max<int64_t>(
      30, static_cast<int64_t>(spec.condensation_epochs * epochs_scale));
  InductiveDataset data = MakeDataset(spec, seed);
  const Graph& original = data.train_graph;
  const int64_t n_syn = SyntheticNodeCount(original, ratio);
  const int64_t train_epochs_original = ctx.fast ? 60 : 200;
  const int64_t train_epochs_synthetic = ctx.fast ? 100 : 300;
  const int64_t repeats = 3;
  Rng rng(seed * 1000 + 1);

  std::vector<MethodResult> results;

  // --- The O-trained model, shared by Whole / coresets / VNG / MCond_OS
  // (the paper trains one GNN on the original graph for these). ---
  std::unique_ptr<GnnModel> model_o =
      TrainSgcOn(original, seed, train_epochs_original);

  // Whole: train and infer on the original graph (O→O reference).
  results.push_back(ServeBothBatches("Whole", *model_o, original, nullptr,
                                     data.test, rng, repeats));

  // Coreset baselines: O-trained model, reduced graph at inference.
  const Tensor embeddings = original.normalized_adjacency().SpMM(
      original.normalized_adjacency().SpMM(original.features()));
  for (CoresetMethod method :
       {CoresetMethod::kRandom, CoresetMethod::kDegree,
        CoresetMethod::kHerding, CoresetMethod::kKCenter}) {
    Rng sel_rng(seed * 100 + static_cast<uint64_t>(method));
    const std::vector<int64_t> selected =
        SelectCoreset(method, original, embeddings, n_syn, sel_rng);
    CondensedGraph cg = BuildCoresetGraph(original, selected);
    results.push_back(ServeBothBatches(CoresetMethodName(method), *model_o,
                                       original, &cg, data.test, rng,
                                       repeats));
  }

  // VNG: O-trained model on the virtual graph.
  {
    Rng vng_rng(seed * 100 + 11);
    CondensedGraph cg = RunVng(original, n_syn, VngConfig{}, vng_rng);
    results.push_back(ServeBothBatches("VNG", *model_o, original, &cg,
                                       data.test, rng, repeats));
  }

  // MCond: one condensation run powers MCond_OS / MCond_SO / MCond_SS.
  {
    MCondConfig config = ConfigForDataset(scaled_spec, ctx.fast);
    MCondResult mcond = RunMCond(original, data.val, n_syn, config, seed);
    results.push_back(ServeBothBatches("MCond_OS", *model_o, original,
                                       &mcond.condensed, data.test, rng,
                                       repeats));
    std::unique_ptr<GnnModel> model_s = TrainSgcOn(
        mcond.condensed.graph, seed + 7, train_epochs_synthetic);
    results.push_back(ServeBothBatches("MCond_SO", *model_s, original,
                                       nullptr, data.test, rng, repeats));
    results.push_back(ServeBothBatches("MCond_SS", *model_s, original,
                                       &mcond.condensed, data.test, rng,
                                       repeats));
  }

  // GCond: S-trained model, original graph at inference (its only option).
  {
    MCondConfig config = ConfigForDataset(scaled_spec, ctx.fast);
    MCondResult gcond = RunGCond(original, n_syn, config, seed);
    std::unique_ptr<GnnModel> model_g = TrainSgcOn(
        gcond.condensed.graph, seed + 9, train_epochs_synthetic);
    results.push_back(ServeBothBatches("GCond", *model_g, original, nullptr,
                                       data.test, rng, repeats));
  }

  return results;
}

std::vector<SuiteAggregate> AggregateSuites(
    const std::vector<std::vector<MethodResult>>& per_seed) {
  std::vector<SuiteAggregate> out;
  if (per_seed.empty()) return out;
  const size_t num_methods = per_seed.front().size();
  for (size_t m = 0; m < num_methods; ++m) {
    SuiteAggregate agg;
    agg.method = per_seed.front()[m].method;
    std::vector<double> graph_accs, node_accs;
    for (const auto& seed_results : per_seed) {
      graph_accs.push_back(seed_results[m].graph_batch.accuracy);
      node_accs.push_back(seed_results[m].node_batch.accuracy);
    }
    agg.graph_acc = Summarize(graph_accs);
    agg.node_acc = Summarize(node_accs);
    agg.graph_serving = per_seed.back()[m].graph_batch;
    agg.node_serving = per_seed.back()[m].node_batch;
    out.push_back(agg);
  }
  return out;
}

}  // namespace bench
}  // namespace mcond
