// Table V: ablation of the optimization constraints under the MCond_SS
// setting — "Plain" (no ℒ_str, no ℒ_ind), "w/o ℒ_str", "w/o ℒ_ind", and
// full MCond — for node-batch and graph-batch inference.
#include <iostream>

#include "common.h"

namespace {

using namespace mcond;
using namespace mcond::bench;

struct AblationCase {
  const char* label;
  bool use_str;
  bool use_ind;
};

}  // namespace

int main() {
  const BenchContext ctx = GetBenchContext();
  std::cout << "=== Table V: optimization-constraint ablation (MCond_SS) "
               "===\n";
  const AblationCase cases[] = {
      {"Plain", false, false},
      {"w/o L_str", false, true},
      {"w/o L_ind", true, false},
      {"MCond_SS", true, true},
  };

  for (const std::string& name : ctx.datasets) {
    const DatasetSpec spec = SpecForBench(name, ctx);
    const double ratio = (spec.name == "reddit-sim")
                             ? spec.reduction_ratios.front()
                             : spec.reduction_ratios.back();
    std::cout << "\n--- " << spec.name << " (r="
              << FormatFloat(ratio * 100, 2) << "%) ---\n";
    ResultTable table({"variant", "node batch", "graph batch"});
    for (const AblationCase& c : cases) {
      std::vector<double> node_accs, graph_accs;
      for (int64_t s = 0; s < ctx.seeds; ++s) {
        const uint64_t seed = 700 + s;
        InductiveDataset data = MakeDataset(spec, seed);
        const int64_t n_syn = SyntheticNodeCount(data.train_graph, ratio);
        // 60% of the full condensation budget: ablation *differences*
        // stabilize earlier than absolute accuracy.
        DatasetSpec scaled = spec;
        scaled.condensation_epochs =
            static_cast<int64_t>(spec.condensation_epochs * 0.6);
        MCondConfig config = ConfigForDataset(scaled, ctx.fast);
        config.use_structure_loss = c.use_str;
        config.use_inductive_loss = c.use_ind;
        MCondResult mcond =
            RunMCond(data.train_graph, data.val, n_syn, config, seed);
        std::unique_ptr<GnnModel> model = TrainSgcOn(
            mcond.condensed.graph, seed + 3, ctx.fast ? 100 : 300);
        Rng rng(seed + 5);
        node_accs.push_back(
            ServeOnCondensed(*model, mcond.condensed, data.test, false, rng,
                             1)
                .accuracy);
        graph_accs.push_back(
            ServeOnCondensed(*model, mcond.condensed, data.test, true, rng,
                             1)
                .accuracy);
      }
      table.AddRow({c.label, FormatAccuracy(Summarize(node_accs)),
                    FormatAccuracy(Summarize(graph_accs))});
    }
    table.Print();
  }
  return 0;
}
