// Serving-throughput benchmark for the persistent ServingSession (the
// perf-opt tentpole, docs/performance.md "Serving"): streams the test split
// through both serving paths and reports requests/sec plus latency
// quantiles.
//
//   per_request: every batch recomposes the deployment from scratch
//       (aM conversion, block composition, full renormalization, full
//       feature restack) — the ComposeDeployment / ServeImpl path.
//   session:     one ServingSession built up front; every batch patches
//       only the rows its links change. Logits are bit-identical to
//       per_request by construction.
//
// Quantiles come from the observability histograms: the session path
// records mcond.serve.session_total_us itself; the per-request loop records
// an equivalent bench-local histogram. p50/p99 are bucketed approximations
// (obs::HistogramApproxQuantile), good to a factor of 2 — enough to rank
// the two paths, not to quote absolute tails.
//
// Modes:
//   (default)  human-readable summary on pubmed-sim.
//   --json     BENCH_kernels.json-style JSON on stdout (BENCH_serving.json
//              is a committed snapshot of this).
//   --smoke    tiny-sim, one pass, prints bit-level logit checksums for
//              both paths and both batch modes. tools/check_determinism.sh
//              diffs this output between thread widths AND asserts the
//              per_request/session checksum pairs match within a run.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "core/tensor_ops.h"
#include "coreset/coreset.h"
#include "data/datasets.h"
#include "eval/batching.h"
#include "eval/inference.h"
#include "nn/sgc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/serving_session.h"

namespace mcond {
namespace {

/// Bit-exact FNV-1a fold over a tensor; any single-bit change anywhere in
/// the stream changes the digest (same scheme as bench_kernels --smoke).
uint64_t BitChecksumFold(uint64_t h, const Tensor& t) {
  const float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    uint32_t bits;
    std::memcpy(&bits, &p[i], sizeof(bits));
    h = (h ^ bits) * 1099511628211ull;
  }
  return h;
}
constexpr uint64_t kFnvSeed = 1469598103934665603ull;

struct PathStats {
  double requests_per_sec = 0.0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  int64_t requests = 0;
  uint64_t checksum = kFnvSeed;
};

/// One streaming pass per `passes` over `batches`, per-request path:
/// the full recompose pipeline every batch.
PathStats RunPerRequest(GnnModel& model, const Graph& base,
                        const CondensedGraph* condensed,
                        const std::vector<HeldOutBatch>& batches,
                        bool graph_batch, int64_t passes, Rng& rng) {
  obs::Histogram& hist = obs::GetHistogram("mcond.serve.bench_per_request_us");
  PathStats stats;
  double total_seconds = 0.0;
  for (int64_t pass = 0; pass < passes; ++pass) {
    for (const HeldOutBatch& batch : batches) {
      obs::TraceSpan span("bench.per_request", /*always_time=*/true);
      Deployment dep = condensed != nullptr
                           ? ComposeDeployment(*condensed, batch, graph_batch)
                           : ComposeDeployment(base, batch, graph_batch);
      const Tensor logits = model.Predict(dep.operators, dep.features, rng);
      const Tensor batch_logits =
          SliceRows(logits, dep.num_base, dep.num_base + dep.batch_size);
      const double seconds = span.ElapsedSeconds();
      hist.Record(span.ElapsedMicros());
      total_seconds += seconds;
      ++stats.requests;
      stats.checksum = BitChecksumFold(stats.checksum, batch_logits);
    }
  }
  stats.requests_per_sec =
      total_seconds > 0.0 ? stats.requests / total_seconds : 0.0;
  stats.p50_us = obs::HistogramApproxQuantile(hist, 0.5);
  stats.p99_us = obs::HistogramApproxQuantile(hist, 0.99);
  return stats;
}

/// Same stream through one persistent session. The session records its own
/// mcond.serve.session_total_us samples; we time the calls for the
/// requests/sec figure so both paths are measured identically.
PathStats RunSession(GnnModel& model, const Graph& base,
                     const CondensedGraph* condensed,
                     const std::vector<HeldOutBatch>& batches,
                     bool graph_batch, int64_t passes, Rng& rng) {
  PathStats stats;
  double total_seconds = 0.0;
  ServingSession session = condensed != nullptr
                               ? ServingSession(*condensed, model)
                               : ServingSession(base, model);
  for (int64_t pass = 0; pass < passes; ++pass) {
    for (const HeldOutBatch& batch : batches) {
      obs::TraceSpan span("bench.session", /*always_time=*/true);
      const Tensor& logits = session.Serve(batch, graph_batch, rng);
      total_seconds += span.ElapsedSeconds();
      ++stats.requests;
      stats.checksum = BitChecksumFold(stats.checksum, logits);
    }
  }
  stats.requests_per_sec =
      total_seconds > 0.0 ? stats.requests / total_seconds : 0.0;
  const obs::Histogram& hist =
      obs::GetHistogram("mcond.serve.session_total_us");
  stats.p50_us = obs::HistogramApproxQuantile(hist, 0.5);
  stats.p99_us = obs::HistogramApproxQuantile(hist, 0.99);
  return stats;
}

struct Workload {
  InductiveDataset data;
  CondensedGraph condensed;
  std::unique_ptr<GnnModel> model;
  std::vector<HeldOutBatch> batches;
};

/// Deterministic workload: SBM dataset, a random-coreset reduction (cheap
/// to build; serving cost depends on artifact shape, not on how it was
/// condensed), and a deterministically initialized untrained SGC (forward
/// cost and bit patterns don't care about training).
Workload MakeWorkload(const std::string& dataset, int64_t batch_size) {
  Workload w;
  w.data = MakeDatasetByName(dataset, 17);
  const Graph& train = w.data.train_graph;
  Rng rng(18);
  const int64_t n_select =
      std::max<int64_t>(2 * train.num_classes(), train.NumNodes() / 20);
  const std::vector<int64_t> selected = SelectCoreset(
      CoresetMethod::kRandom, train, train.features(), n_select, rng);
  w.condensed = BuildCoresetGraph(train, selected);
  GnnConfig gc;
  w.model = std::make_unique<Sgc>(train.FeatureDim(), train.num_classes(),
                                  gc, rng);
  w.batches = SplitIntoBatches(w.data.test, batch_size);
  return w;
}

int RunSmoke() {
  std::printf("threads %d\n", ThreadPool::Global().NumThreads());
  Workload w = MakeWorkload("tiny-sim", 8);
  for (const bool graph_batch : {true, false}) {
    const char* tag = graph_batch ? "graph" : "node";
    // Fresh Rngs per path: SGC's Predict is deterministic, but identical
    // streams keep the comparison honest if a stochastic arch lands here.
    Rng rng_a(7), rng_b(7), rng_c(7), rng_d(7);
    const PathStats pr = RunPerRequest(*w.model, w.data.train_graph,
                                       &w.condensed, w.batches, graph_batch,
                                       /*passes=*/1, rng_a);
    const PathStats se = RunSession(*w.model, w.data.train_graph,
                                    &w.condensed, w.batches, graph_batch,
                                    /*passes=*/1, rng_b);
    std::printf("logits_per_request_%s %016" PRIx64 "\n", tag, pr.checksum);
    std::printf("logits_session_%s %016" PRIx64 "\n", tag, se.checksum);
    // Original-graph sessions share the same patching machinery but skip
    // the aM conversion; checksum them too so the determinism gate covers
    // both constructors.
    const PathStats pro = RunPerRequest(*w.model, w.data.train_graph,
                                        /*condensed=*/nullptr, w.batches,
                                        graph_batch, /*passes=*/1, rng_c);
    const PathStats seo = RunSession(*w.model, w.data.train_graph,
                                     /*condensed=*/nullptr, w.batches,
                                     graph_batch, /*passes=*/1, rng_d);
    std::printf("logits_per_request_orig_%s %016" PRIx64 "\n", tag,
                pro.checksum);
    std::printf("logits_session_orig_%s %016" PRIx64 "\n", tag, seo.checksum);
  }
  return 0;
}

struct Row {
  std::string name;
  PathStats stats;
};

int RunBench(bool json) {
  const std::string dataset = "pubmed-sim";
  const int64_t batch_size = 32;
  const int64_t passes = 8;
  Workload w = MakeWorkload(dataset, batch_size);
  std::vector<Row> rows;
  Rng rng(7);
  rows.push_back({"condensed/per_request",
                  RunPerRequest(*w.model, w.data.train_graph, &w.condensed,
                                w.batches, /*graph_batch=*/true, passes,
                                rng)});
  rows.push_back({"condensed/session",
                  RunSession(*w.model, w.data.train_graph, &w.condensed,
                             w.batches, /*graph_batch=*/true, passes, rng)});
  rows.push_back({"original/per_request",
                  RunPerRequest(*w.model, w.data.train_graph,
                                /*condensed=*/nullptr, w.batches,
                                /*graph_batch=*/true, passes, rng)});
  rows.push_back({"original/session",
                  RunSession(*w.model, w.data.train_graph,
                             /*condensed=*/nullptr, w.batches,
                             /*graph_batch=*/true, passes, rng)});

  if (json) {
    std::printf("{\n");
    std::printf(
        "  \"note\": \"Serving-throughput baseline: %s, batch_size %lld, "
        "%lld stream passes, graph-batch mode. Session and per-request "
        "logits are bit-identical (ctest check_determinism); p50/p99 are "
        "pow2-bucket approximations from the obs histograms. context "
        "records the capture machine's CPU count — on a 1-CPU container "
        "the session/per_request ratio understates the multi-core gap; "
        "rerun bench_serving_throughput --json there and replace this "
        "file.\",\n",
        dataset.c_str(), static_cast<long long>(batch_size),
        static_cast<long long>(passes));
    std::printf("  \"context\": {\"num_cpus\": %d, \"threads\": %d},\n",
                ThreadPool::DefaultNumThreads(),
                ThreadPool::Global().NumThreads());
    std::printf("  \"benchmarks\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf("    {\"name\": \"%s\", \"requests\": %lld, "
                  "\"requests_per_sec\": %.2f, \"p50_us\": %llu, "
                  "\"p99_us\": %llu}%s\n",
                  r.name.c_str(), static_cast<long long>(r.stats.requests),
                  r.stats.requests_per_sec,
                  static_cast<unsigned long long>(r.stats.p50_us),
                  static_cast<unsigned long long>(r.stats.p99_us),
                  i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("serving throughput on %s (batch %lld, %lld passes, "
                "%d threads)\n",
                dataset.c_str(), static_cast<long long>(batch_size),
                static_cast<long long>(passes),
                ThreadPool::Global().NumThreads());
    for (const Row& r : rows) {
      std::printf("  %-24s %9.2f req/s   p50 %6llu us   p99 %6llu us\n",
                  r.name.c_str(), r.stats.requests_per_sec,
                  static_cast<unsigned long long>(r.stats.p50_us),
                  static_cast<unsigned long long>(r.stats.p99_us));
    }
    const double cond_speedup =
        rows[1].stats.requests_per_sec / rows[0].stats.requests_per_sec;
    const double orig_speedup =
        rows[3].stats.requests_per_sec / rows[2].stats.requests_per_sec;
    std::printf("  session speedup: condensed %.2fx, original %.2fx\n",
                cond_speedup, orig_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace mcond

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return mcond::RunSmoke();
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  return mcond::RunBench(json);
}
