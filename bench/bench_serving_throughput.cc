// Serving-throughput benchmark for the persistent ServingSession (the
// perf-opt tentpole, docs/performance.md "Serving"): streams the test split
// through both serving paths and reports requests/sec plus latency
// quantiles.
//
//   per_request: every batch recomposes the deployment from scratch
//       (aM conversion, block composition, full renormalization, full
//       feature restack) — the ComposeDeployment / ServeImpl path.
//   session:     one ServingSession built up front; every batch patches
//       only the rows its links change. Logits are bit-identical to
//       per_request by construction.
//
// Quantiles come from the observability histograms: the session path
// records mcond.serve.session_total_us itself; the per-request loop records
// an equivalent bench-local histogram. p50/p99 are bucketed approximations
// (obs::HistogramApproxQuantile), good to a factor of 2 — enough to rank
// the two paths, not to quote absolute tails.
//
// The concurrent mode drives a ConcurrentServer (replica pool + bounded
// queue) with closed-loop clients: each client submits one request, waits
// for its logits, and immediately submits the next, so offered load tracks
// service capacity. Aggregate req/s is total completed requests over wall
// time; p50/p99 come from the server's enqueue-to-reply histogram
// (mcond.server.latency_us). Per-request logits stay bit-identical to a
// solo session, checked here with ORDER-INVARIANT digests: each request's
// FNV-1a digest is folded into a running sum mod 2^64, so any completion
// order yields the same total (XOR would cancel identical repeats).
//
// Modes:
//   (default)  human-readable summary on pubmed-sim, solo paths plus one
//              concurrent configuration (--clients C --server_threads K
//              [--queue N] [--micro_batch B], defaults 8/4/32/4).
//   --json     BENCH_kernels.json-style JSON on stdout (BENCH_serving.json
//              is a committed snapshot of this).
//   --reject   load-shedding: the server rejects on a full queue instead
//              of blocking; clients drop rejects. Rows report the
//              rejected-request count next to req/s.
//   --timeline F [--timeline_interval_ms N]   run a MetricsExporter during
//              the concurrent row: JSONL time series to F plus a printed
//              per-interval req/s + p50/p99 + rejects/s timeline.
//   --smoke    tiny-sim, one pass, prints bit-level logit checksums for
//              both paths and both batch modes, plus order-invariant
//              concurrent checksum sums at K=1 and K=8 (micro-batched).
//              tools/check_determinism.sh diffs this output between thread
//              widths AND asserts the per_request/session checksum pairs
//              and the concurrent sums match within a run.
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/logging.h"
#include "core/parallel.h"
#include "core/tensor_ops.h"
#include "coreset/coreset.h"
#include "data/datasets.h"
#include "eval/batching.h"
#include "eval/inference.h"
#include "nn/sgc.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/concurrent_server.h"
#include "serve/serving_session.h"

namespace mcond {
namespace {

/// Bit-exact FNV-1a fold over a tensor; any single-bit change anywhere in
/// the stream changes the digest (same scheme as bench_kernels --smoke).
uint64_t BitChecksumFold(uint64_t h, const Tensor& t) {
  const float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    uint32_t bits;
    std::memcpy(&bits, &p[i], sizeof(bits));
    h = (h ^ bits) * 1099511628211ull;
  }
  return h;
}
constexpr uint64_t kFnvSeed = 1469598103934665603ull;

struct PathStats {
  double requests_per_sec = 0.0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  int64_t requests = 0;
  /// Requests shed by the server's backpressure policy during this run
  /// (delta of mcond.server.rejected). Always 0 for the solo paths and for
  /// blocking concurrent runs; nonzero only with --reject.
  int64_t rejected = 0;
  uint64_t checksum = kFnvSeed;
};

/// One streaming pass per `passes` over `batches`, per-request path:
/// the full recompose pipeline every batch.
PathStats RunPerRequest(GnnModel& model, const Graph& base,
                        const CondensedGraph* condensed,
                        const std::vector<HeldOutBatch>& batches,
                        bool graph_batch, int64_t passes, Rng& rng) {
  obs::Histogram& hist = obs::GetHistogram("mcond.serve.bench_per_request_us");
  PathStats stats;
  double total_seconds = 0.0;
  for (int64_t pass = 0; pass < passes; ++pass) {
    for (const HeldOutBatch& batch : batches) {
      obs::TraceSpan span("bench.per_request", /*always_time=*/true);
      Deployment dep = condensed != nullptr
                           ? ComposeDeployment(*condensed, batch, graph_batch)
                           : ComposeDeployment(base, batch, graph_batch);
      const Tensor logits = model.Predict(dep.operators, dep.features, rng);
      const Tensor batch_logits =
          SliceRows(logits, dep.num_base, dep.num_base + dep.batch_size);
      const double seconds = span.ElapsedSeconds();
      hist.Record(span.ElapsedMicros());
      total_seconds += seconds;
      ++stats.requests;
      stats.checksum = BitChecksumFold(stats.checksum, batch_logits);
    }
  }
  stats.requests_per_sec =
      total_seconds > 0.0 ? stats.requests / total_seconds : 0.0;
  stats.p50_us = obs::HistogramApproxQuantile(hist, 0.5);
  stats.p99_us = obs::HistogramApproxQuantile(hist, 0.99);
  return stats;
}

/// Same stream through one persistent session. The session records its own
/// mcond.serve.session_total_us samples; we time the calls for the
/// requests/sec figure so both paths are measured identically.
PathStats RunSession(GnnModel& model, const Graph& base,
                     const CondensedGraph* condensed,
                     const std::vector<HeldOutBatch>& batches,
                     bool graph_batch, int64_t passes, Rng& rng) {
  PathStats stats;
  double total_seconds = 0.0;
  ServingSession session = condensed != nullptr
                               ? ServingSession(*condensed, model)
                               : ServingSession(base, model);
  for (int64_t pass = 0; pass < passes; ++pass) {
    for (const HeldOutBatch& batch : batches) {
      obs::TraceSpan span("bench.session", /*always_time=*/true);
      const Tensor& logits = session.Serve(batch, graph_batch, rng);
      total_seconds += span.ElapsedSeconds();
      ++stats.requests;
      stats.checksum = BitChecksumFold(stats.checksum, logits);
    }
  }
  stats.requests_per_sec =
      total_seconds > 0.0 ? stats.requests / total_seconds : 0.0;
  const obs::Histogram& hist =
      obs::GetHistogram("mcond.serve.session_total_us");
  stats.p50_us = obs::HistogramApproxQuantile(hist, 0.5);
  stats.p99_us = obs::HistogramApproxQuantile(hist, 0.99);
  return stats;
}

struct ConcurrentOptions {
  int clients = 8;
  int server_threads = 4;
  int queue_capacity = 32;
  int micro_batch = 4;
  /// Load-shedding mode: the server rejects on a full queue instead of
  /// blocking the submitter; clients drop rejected requests and move on.
  bool reject = false;
  /// When nonempty, a MetricsExporter runs for the duration of the
  /// concurrent run: one JSONL line per interval plus a printed per-second
  /// req/s + interval p50/p99 timeline.
  std::string timeline_path;
  int timeline_interval_ms = 1000;
};

/// Closed-loop concurrent run: `clients` threads each stream `passes`
/// copies of the batch list through a ConcurrentServer of
/// `server_threads` replicas, reusing one output tensor per client.
/// `checksum` is the order-invariant sum of per-request digests.
PathStats RunConcurrent(GnnModel& model, const Graph& base,
                        const CondensedGraph* condensed,
                        const std::vector<HeldOutBatch>& batches,
                        bool graph_batch, int64_t passes,
                        const ConcurrentOptions& opt) {
  std::shared_ptr<const SessionBase> session_base =
      condensed != nullptr ? SessionBase::Build(*condensed)
                           : SessionBase::Build(base);
  ConcurrentServer::Config cfg;
  cfg.num_replicas = opt.server_threads;
  cfg.queue_capacity = opt.queue_capacity;
  cfg.micro_batch = opt.micro_batch;
  cfg.block_when_full = !opt.reject;
  ConcurrentServer server(std::move(session_base), model, cfg);

  obs::MetricsExporter exporter([&] {
    obs::MetricsExporterOptions options;
    options.jsonl_path = opt.timeline_path;
    options.interval_ms = opt.timeline_interval_ms;
    options.tick_sink = [](const obs::MetricsTick& tick) {
      const obs::HistogramSnapshot* lat =
          tick.HistogramDelta("mcond.server.latency_us");
      std::printf("  t=%7.2fs  %9.2f req/s   interval p50 %6llu us   "
                  "p99 %6llu us   rejected %.0f/s\n",
                  static_cast<double>(tick.ts_us) * 1e-6,
                  tick.CounterRate("mcond.server.requests"),
                  static_cast<unsigned long long>(
                      lat != nullptr
                          ? obs::HistogramApproxQuantile(*lat, 0.5)
                          : 0),
                  static_cast<unsigned long long>(
                      lat != nullptr
                          ? obs::HistogramApproxQuantile(*lat, 0.99)
                          : 0),
                  tick.CounterRate("mcond.server.rejected"));
    };
    return options;
  }());
  if (!opt.timeline_path.empty()) {
    const Status st = exporter.Start();
    MCOND_CHECK(st.ok()) << st.ToString();
  }

  const int64_t rejected_before =
      obs::GetCounter("mcond.server.rejected").Value();
  std::atomic<uint64_t> digest_sum{0};
  std::atomic<int64_t> completed{0};
  obs::TraceSpan wall("bench.concurrent", /*always_time=*/true);
  std::vector<std::thread> client_threads;
  client_threads.reserve(static_cast<size_t>(opt.clients));
  for (int c = 0; c < opt.clients; ++c) {
    client_threads.emplace_back([&] {
      Tensor out;  // reused across the stream: steady-state zero-alloc
      uint64_t local_sum = 0;
      int64_t local_done = 0;
      for (int64_t pass = 0; pass < passes; ++pass) {
        for (const HeldOutBatch& batch : batches) {
          const Status st = server.ServeSync(batch, graph_batch, &out);
          if (!st.ok() && opt.reject) continue;  // load shed, move on
          MCOND_CHECK(st.ok()) << st.ToString();
          local_sum += BitChecksumFold(kFnvSeed, out);
          ++local_done;
        }
      }
      digest_sum.fetch_add(local_sum, std::memory_order_relaxed);
      completed.fetch_add(local_done, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : client_threads) t.join();
  const double seconds = wall.ElapsedSeconds();
  server.Shutdown();
  exporter.Stop();

  PathStats stats;
  stats.requests = completed.load(std::memory_order_relaxed);
  stats.requests_per_sec = seconds > 0.0 ? stats.requests / seconds : 0.0;
  stats.rejected =
      obs::GetCounter("mcond.server.rejected").Value() - rejected_before;
  const obs::Histogram& hist = obs::GetHistogram("mcond.server.latency_us");
  stats.p50_us = obs::HistogramApproxQuantile(hist, 0.5);
  stats.p99_us = obs::HistogramApproxQuantile(hist, 0.99);
  stats.checksum = digest_sum.load(std::memory_order_relaxed);
  return stats;
}

struct Workload {
  InductiveDataset data;
  CondensedGraph condensed;
  std::unique_ptr<GnnModel> model;
  std::vector<HeldOutBatch> batches;
};

/// Deterministic workload: SBM dataset, a random-coreset reduction (cheap
/// to build; serving cost depends on artifact shape, not on how it was
/// condensed), and a deterministically initialized untrained SGC (forward
/// cost and bit patterns don't care about training).
Workload MakeWorkload(const std::string& dataset, int64_t batch_size) {
  Workload w;
  w.data = MakeDatasetByName(dataset, 17);
  const Graph& train = w.data.train_graph;
  Rng rng(18);
  const int64_t n_select =
      std::max<int64_t>(2 * train.num_classes(), train.NumNodes() / 20);
  const std::vector<int64_t> selected = SelectCoreset(
      CoresetMethod::kRandom, train, train.features(), n_select, rng);
  w.condensed = BuildCoresetGraph(train, selected);
  GnnConfig gc;
  w.model = std::make_unique<Sgc>(train.FeatureDim(), train.num_classes(),
                                  gc, rng);
  w.batches = SplitIntoBatches(w.data.test, batch_size);
  return w;
}

int RunSmoke() {
  std::printf("threads %d\n", ThreadPool::Global().NumThreads());
  Workload w = MakeWorkload("tiny-sim", 8);
  for (const bool graph_batch : {true, false}) {
    const char* tag = graph_batch ? "graph" : "node";
    // Fresh Rngs per path: SGC's Predict is deterministic, but identical
    // streams keep the comparison honest if a stochastic arch lands here.
    Rng rng_a(7), rng_b(7), rng_c(7), rng_d(7);
    const PathStats pr = RunPerRequest(*w.model, w.data.train_graph,
                                       &w.condensed, w.batches, graph_batch,
                                       /*passes=*/1, rng_a);
    const PathStats se = RunSession(*w.model, w.data.train_graph,
                                    &w.condensed, w.batches, graph_batch,
                                    /*passes=*/1, rng_b);
    std::printf("logits_per_request_%s %016" PRIx64 "\n", tag, pr.checksum);
    std::printf("logits_session_%s %016" PRIx64 "\n", tag, se.checksum);
    // Original-graph sessions share the same patching machinery but skip
    // the aM conversion; checksum them too so the determinism gate covers
    // both constructors.
    const PathStats pro = RunPerRequest(*w.model, w.data.train_graph,
                                        /*condensed=*/nullptr, w.batches,
                                        graph_batch, /*passes=*/1, rng_c);
    const PathStats seo = RunSession(*w.model, w.data.train_graph,
                                     /*condensed=*/nullptr, w.batches,
                                     graph_batch, /*passes=*/1, rng_d);
    std::printf("logits_per_request_orig_%s %016" PRIx64 "\n", tag,
                pro.checksum);
    std::printf("logits_session_orig_%s %016" PRIx64 "\n", tag, seo.checksum);

    // Concurrent serving must reproduce the solo bits at every replica
    // count and with micro-batching. Four closed-loop clients each stream
    // the batch list once, so the order-invariant digest sum must equal
    // 4x the solo additive sum — at K=1 and at an oversubscribed K=8.
    ServingSession solo(w.condensed, *w.model);
    Rng rng_e(7);
    uint64_t solo_sum = 0;
    for (const HeldOutBatch& batch : w.batches) {
      solo_sum += BitChecksumFold(kFnvSeed,
                                  solo.Serve(batch, graph_batch, rng_e));
    }
    ConcurrentOptions k1;
    k1.clients = 4;
    k1.server_threads = 1;
    k1.micro_batch = 1;
    ConcurrentOptions k8;
    k8.clients = 4;
    k8.server_threads = 8;
    k8.micro_batch = 4;
    const PathStats c1 =
        RunConcurrent(*w.model, w.data.train_graph, &w.condensed, w.batches,
                      graph_batch, /*passes=*/1, k1);
    const PathStats c8 =
        RunConcurrent(*w.model, w.data.train_graph, &w.condensed, w.batches,
                      graph_batch, /*passes=*/1, k8);
    std::printf("logits_concurrent_expected_%s %016" PRIx64 "\n", tag,
                solo_sum * 4);
    std::printf("logits_concurrent_k1_%s %016" PRIx64 "\n", tag, c1.checksum);
    std::printf("logits_concurrent_k8_%s %016" PRIx64 "\n", tag, c8.checksum);
  }
  return 0;
}

struct Row {
  std::string name;
  PathStats stats;
};

int RunBench(bool json, const ConcurrentOptions& opt) {
  const std::string dataset = "pubmed-sim";
  const int64_t batch_size = 32;
  const int64_t passes = 8;
  Workload w = MakeWorkload(dataset, batch_size);
  std::vector<Row> rows;
  Rng rng(7);
  char concurrent_name[64];
  std::snprintf(concurrent_name, sizeof(concurrent_name),
                "condensed/concurrent_c%d_k%d_b%d", opt.clients,
                opt.server_threads, opt.micro_batch);
  rows.push_back({"condensed/per_request",
                  RunPerRequest(*w.model, w.data.train_graph, &w.condensed,
                                w.batches, /*graph_batch=*/true, passes,
                                rng)});
  rows.push_back({"condensed/session",
                  RunSession(*w.model, w.data.train_graph, &w.condensed,
                             w.batches, /*graph_batch=*/true, passes, rng)});
  rows.push_back({"original/per_request",
                  RunPerRequest(*w.model, w.data.train_graph,
                                /*condensed=*/nullptr, w.batches,
                                /*graph_batch=*/true, passes, rng)});
  rows.push_back({"original/session",
                  RunSession(*w.model, w.data.train_graph,
                             /*condensed=*/nullptr, w.batches,
                             /*graph_batch=*/true, passes, rng)});
  // Closed-loop clients against the replica-pool server. Each client
  // streams `passes` copies, so total request volume is `clients` times a
  // solo row's; req/s is the aggregate across all of them.
  rows.push_back({concurrent_name,
                  RunConcurrent(*w.model, w.data.train_graph, &w.condensed,
                                w.batches, /*graph_batch=*/true, passes,
                                opt)});
  if (json) {
    std::printf("{\n");
    std::printf(
        "  \"note\": \"Serving-throughput baseline: %s, batch_size %lld, "
        "%lld stream passes, graph-batch mode. Session and per-request "
        "logits are bit-identical (ctest check_determinism); p50/p99 are "
        "pow2-bucket approximations from the obs histograms. The "
        "concurrent row drives a ConcurrentServer (%d replicas, queue %d, "
        "micro-batch %d) with %d closed-loop clients; its requests_per_sec "
        "is the aggregate across clients and its p50/p99 are "
        "enqueue-to-reply, so queueing delay is included. context records "
        "the capture machine's CPU count — on a 1-CPU container replicas "
        "time-slice one core, so aggregate concurrent req/s cannot exceed "
        "solo session req/s there and the multi-core gain is invisible; "
        "rerun bench_serving_throughput --json on a multi-core machine and "
        "replace this file.\",\n",
        dataset.c_str(), static_cast<long long>(batch_size),
        static_cast<long long>(passes), opt.server_threads,
        opt.queue_capacity, opt.micro_batch, opt.clients);
    std::printf("  \"context\": {\"num_cpus\": %d, \"threads\": %d},\n",
                ThreadPool::DefaultNumThreads(),
                ThreadPool::Global().NumThreads());
    std::printf("  \"benchmarks\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf("    {\"name\": \"%s\", \"requests\": %lld, "
                  "\"rejected\": %lld, "
                  "\"requests_per_sec\": %.2f, \"p50_us\": %llu, "
                  "\"p99_us\": %llu}%s\n",
                  r.name.c_str(), static_cast<long long>(r.stats.requests),
                  static_cast<long long>(r.stats.rejected),
                  r.stats.requests_per_sec,
                  static_cast<unsigned long long>(r.stats.p50_us),
                  static_cast<unsigned long long>(r.stats.p99_us),
                  i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("serving throughput on %s (batch %lld, %lld passes, "
                "%d threads)\n",
                dataset.c_str(), static_cast<long long>(batch_size),
                static_cast<long long>(passes),
                ThreadPool::Global().NumThreads());
    for (const Row& r : rows) {
      std::printf("  %-24s %9.2f req/s   p50 %6llu us   p99 %6llu us",
                  r.name.c_str(), r.stats.requests_per_sec,
                  static_cast<unsigned long long>(r.stats.p50_us),
                  static_cast<unsigned long long>(r.stats.p99_us));
      if (r.stats.rejected > 0) {
        std::printf("   rejected %lld",
                    static_cast<long long>(r.stats.rejected));
      }
      std::printf("\n");
    }
    const double cond_speedup =
        rows[1].stats.requests_per_sec / rows[0].stats.requests_per_sec;
    const double orig_speedup =
        rows[3].stats.requests_per_sec / rows[2].stats.requests_per_sec;
    const double concurrent_vs_solo =
        rows[4].stats.requests_per_sec / rows[1].stats.requests_per_sec;
    std::printf("  session speedup: condensed %.2fx, original %.2fx\n",
                cond_speedup, orig_speedup);
    std::printf("  concurrent aggregate vs solo session: %.2fx "
                "(%d clients, %d replicas, %d cpus)\n",
                concurrent_vs_solo, opt.clients, opt.server_threads,
                ThreadPool::DefaultNumThreads());
  }
  return 0;
}

}  // namespace
}  // namespace mcond

int main(int argc, char** argv) {
  bool json = false;
  mcond::ConcurrentOptions opt;
  const auto int_flag = [&](int i, const char* name, int* out) {
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      *out = std::atoi(argv[i + 1]);
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return mcond::RunSmoke();
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--reject") == 0) opt.reject = true;
    if (std::strcmp(argv[i], "--timeline") == 0 && i + 1 < argc) {
      opt.timeline_path = argv[++i];
      continue;
    }
    if (int_flag(i, "--clients", &opt.clients) ||
        int_flag(i, "--server_threads", &opt.server_threads) ||
        int_flag(i, "--queue", &opt.queue_capacity) ||
        int_flag(i, "--micro_batch", &opt.micro_batch) ||
        int_flag(i, "--timeline_interval_ms", &opt.timeline_interval_ms)) {
      ++i;
    }
  }
  return mcond::RunBench(json, opt);
}
