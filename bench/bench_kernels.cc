// Micro-benchmarks (google-benchmark) backing the complexity analysis of
// §III-E: the forward-pass kernels scale with deployed-graph size, which is
// exactly what shrinks when serving moves from the original graph (N) to
// the synthetic graph (N'). Also covers the serving-path pieces: aM
// conversion, block composition, and normalization.
#include <benchmark/benchmark.h>

#include "core/tensor_ops.h"
#include "data/synthetic.h"
#include "graph/compose.h"
#include "nn/module.h"
#include "nn/sgc.h"

namespace mcond {
namespace {

Graph MakeGraph(int64_t n, double avg_degree = 16.0) {
  SbmConfig config;
  config.num_nodes = n;
  config.num_classes = 8;
  config.feature_dim = 64;
  config.avg_degree = avg_degree;
  Rng rng(1);
  return GenerateSbmGraph(config, rng);
}

void BM_SpMM(benchmark::State& state) {
  Graph g = MakeGraph(state.range(0));
  const Tensor& x = g.features();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.normalized_adjacency().SpMM(x));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpMM)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_DenseMatMul(benchmark::State& state) {
  Rng rng(2);
  const int64_t n = state.range(0);
  Tensor a = rng.NormalTensor(n, 64);
  Tensor b = rng.NormalTensor(64, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DenseMatMul)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_SgcForward(benchmark::State& state) {
  Graph g = MakeGraph(state.range(0));
  Rng rng(3);
  GnnConfig config;
  Sgc model(g.FeatureDim(), g.num_classes(), config, rng);
  GraphOperators ops_ctx = GraphOperators::FromGraph(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(ops_ctx, g.features(), rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SgcForward)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_ComposeAndNormalize(benchmark::State& state) {
  Graph g = MakeGraph(state.range(0));
  // A batch of n/10 incoming nodes with ~8 links each.
  const int64_t n_new = state.range(0) / 10;
  Rng rng(4);
  std::vector<Triplet> links;
  for (int64_t i = 0; i < n_new; ++i) {
    for (int64_t k = 0; k < 8; ++k) {
      links.push_back({i, rng.RandInt(0, g.NumNodes() - 1), 1.0f});
    }
  }
  CsrMatrix a = CsrMatrix::FromTriplets(n_new, g.NumNodes(), links);
  CsrMatrix inter = CsrMatrix::FromTriplets(n_new, n_new, {});
  for (auto _ : state) {
    CsrMatrix composed = ComposeBlockAdjacency(g.adjacency(), a, inter);
    benchmark::DoNotOptimize(SymNormalize(composed));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ComposeAndNormalize)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_MappingConversion(benchmark::State& state) {
  // links (n×N) · mapping (N×N'): the per-batch aM cost of Eq. (11).
  const int64_t n_orig = state.range(0);
  const int64_t n_new = 200;
  const int64_t n_syn = 64;
  Rng rng(5);
  std::vector<Triplet> links;
  for (int64_t i = 0; i < n_new; ++i) {
    for (int64_t k = 0; k < 8; ++k) {
      links.push_back({i, rng.RandInt(0, n_orig - 1), 1.0f});
    }
  }
  CsrMatrix a = CsrMatrix::FromTriplets(n_new, n_orig, links);
  std::vector<Triplet> map_t;
  for (int64_t i = 0; i < n_orig; ++i) {
    for (int64_t k = 0; k < 4; ++k) {
      map_t.push_back({i, rng.RandInt(0, n_syn - 1), 0.25f});
    }
  }
  CsrMatrix mapping = CsrMatrix::FromTriplets(n_orig, n_syn, map_t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrMatrix::Multiply(a, mapping));
  }
  state.SetComplexityN(n_orig);
}
BENCHMARK(BM_MappingConversion)->Range(1024, 8192);

void BM_DenseVsSparseDeployment(benchmark::State& state) {
  // End-to-end serving-cost contrast at a fixed batch size: range(0)==0
  // serves on a large original-style graph, ==1 on a small synthetic-style
  // graph. The ratio of the two timings is the Fig. 3/4 speedup mechanism.
  const bool synthetic = state.range(0) == 1;
  Graph g = MakeGraph(synthetic ? 64 : 4096, synthetic ? 8.0 : 32.0);
  Rng rng(6);
  GnnConfig config;
  Sgc model(g.FeatureDim(), g.num_classes(), config, rng);
  const int64_t n_new = 100;
  std::vector<Triplet> links;
  for (int64_t i = 0; i < n_new; ++i) {
    for (int64_t k = 0; k < 6; ++k) {
      links.push_back({i, rng.RandInt(0, g.NumNodes() - 1), 1.0f});
    }
  }
  CsrMatrix a = CsrMatrix::FromTriplets(n_new, g.NumNodes(), links);
  CsrMatrix inter = CsrMatrix::FromTriplets(n_new, n_new, {});
  Tensor batch_x = rng.NormalTensor(n_new, g.FeatureDim());
  for (auto _ : state) {
    CsrMatrix composed = ComposeBlockAdjacency(g.adjacency(), a, inter);
    GraphOperators ops_ctx = GraphOperators::FromAdjacency(composed);
    Tensor features = ConcatRows(g.features(), batch_x);
    benchmark::DoNotOptimize(model.Predict(ops_ctx, features, rng));
  }
}
BENCHMARK(BM_DenseVsSparseDeployment)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"synthetic"});

}  // namespace
}  // namespace mcond

BENCHMARK_MAIN();
