// Micro-benchmarks (google-benchmark) backing the complexity analysis of
// §III-E: the forward-pass kernels scale with deployed-graph size, which is
// exactly what shrinks when serving moves from the original graph (N) to
// the synthetic graph (N'). Also covers the serving-path pieces: aM
// conversion, block composition, and normalization.
//
// Extra modes:
//   bench_kernels --smoke
//       Runs one fixed instance of each parallel kernel and prints a
//       bit-level checksum per kernel, pinned to the exact-oracle scalar
//       SIMD tier unless MCOND_SIMD is set. tools/check_determinism.sh
//       diffs this output between MCOND_NUM_THREADS=1 and N to prove the
//       determinism contract end to end (docs/performance.md).
//   BM_*Threads benchmarks sweep the pool width (the Arg is the thread
//       count; 0 means the default width) for the speedup table in
//       BENCH_kernels.json.
//   BM_*Simd benchmarks sweep the SIMD tier (the Arg: 0 scalar, 1 avx2)
//       for the scalar-vs-vector rows in BENCH_kernels.json.
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/parallel.h"
#include "core/simd.h"
#include "core/tensor_ops.h"
#include "data/synthetic.h"
#include "graph/compose.h"
#include "nn/module.h"
#include "nn/sgc.h"

namespace mcond {
namespace {

Graph MakeGraph(int64_t n, double avg_degree = 16.0) {
  SbmConfig config;
  config.num_nodes = n;
  config.num_classes = 8;
  config.feature_dim = 64;
  config.avg_degree = avg_degree;
  Rng rng(1);
  return GenerateSbmGraph(config, rng);
}

void BM_SpMM(benchmark::State& state) {
  Graph g = MakeGraph(state.range(0));
  const Tensor& x = g.features();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.normalized_adjacency().SpMM(x));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpMM)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_DenseMatMul(benchmark::State& state) {
  Rng rng(2);
  const int64_t n = state.range(0);
  Tensor a = rng.NormalTensor(n, 64);
  Tensor b = rng.NormalTensor(64, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DenseMatMul)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_SgcForward(benchmark::State& state) {
  Graph g = MakeGraph(state.range(0));
  Rng rng(3);
  GnnConfig config;
  Sgc model(g.FeatureDim(), g.num_classes(), config, rng);
  GraphOperators ops_ctx = GraphOperators::FromGraph(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(ops_ctx, g.features(), rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SgcForward)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_ComposeAndNormalize(benchmark::State& state) {
  Graph g = MakeGraph(state.range(0));
  // A batch of n/10 incoming nodes with ~8 links each.
  const int64_t n_new = state.range(0) / 10;
  Rng rng(4);
  std::vector<Triplet> links;
  for (int64_t i = 0; i < n_new; ++i) {
    for (int64_t k = 0; k < 8; ++k) {
      links.push_back({i, rng.RandInt(0, g.NumNodes() - 1), 1.0f});
    }
  }
  CsrMatrix a = CsrMatrix::FromTriplets(n_new, g.NumNodes(), links);
  CsrMatrix inter = CsrMatrix::FromTriplets(n_new, n_new, {});
  for (auto _ : state) {
    CsrMatrix composed = ComposeBlockAdjacency(g.adjacency(), a, inter);
    benchmark::DoNotOptimize(SymNormalize(composed));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ComposeAndNormalize)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_MappingConversion(benchmark::State& state) {
  // links (n×N) · mapping (N×N'): the per-batch aM cost of Eq. (11).
  const int64_t n_orig = state.range(0);
  const int64_t n_new = 200;
  const int64_t n_syn = 64;
  Rng rng(5);
  std::vector<Triplet> links;
  for (int64_t i = 0; i < n_new; ++i) {
    for (int64_t k = 0; k < 8; ++k) {
      links.push_back({i, rng.RandInt(0, n_orig - 1), 1.0f});
    }
  }
  CsrMatrix a = CsrMatrix::FromTriplets(n_new, n_orig, links);
  std::vector<Triplet> map_t;
  for (int64_t i = 0; i < n_orig; ++i) {
    for (int64_t k = 0; k < 4; ++k) {
      map_t.push_back({i, rng.RandInt(0, n_syn - 1), 0.25f});
    }
  }
  CsrMatrix mapping = CsrMatrix::FromTriplets(n_orig, n_syn, map_t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrMatrix::Multiply(a, mapping));
  }
  state.SetComplexityN(n_orig);
}
BENCHMARK(BM_MappingConversion)->Range(1024, 8192);

void BM_DenseVsSparseDeployment(benchmark::State& state) {
  // End-to-end serving-cost contrast at a fixed batch size: range(0)==0
  // serves on a large original-style graph, ==1 on a small synthetic-style
  // graph. The ratio of the two timings is the Fig. 3/4 speedup mechanism.
  const bool synthetic = state.range(0) == 1;
  Graph g = MakeGraph(synthetic ? 64 : 4096, synthetic ? 8.0 : 32.0);
  Rng rng(6);
  GnnConfig config;
  Sgc model(g.FeatureDim(), g.num_classes(), config, rng);
  const int64_t n_new = 100;
  std::vector<Triplet> links;
  for (int64_t i = 0; i < n_new; ++i) {
    for (int64_t k = 0; k < 6; ++k) {
      links.push_back({i, rng.RandInt(0, g.NumNodes() - 1), 1.0f});
    }
  }
  CsrMatrix a = CsrMatrix::FromTriplets(n_new, g.NumNodes(), links);
  CsrMatrix inter = CsrMatrix::FromTriplets(n_new, n_new, {});
  Tensor batch_x = rng.NormalTensor(n_new, g.FeatureDim());
  for (auto _ : state) {
    CsrMatrix composed = ComposeBlockAdjacency(g.adjacency(), a, inter);
    GraphOperators ops_ctx = GraphOperators::FromAdjacency(composed);
    Tensor features = ConcatRows(g.features(), batch_x);
    benchmark::DoNotOptimize(model.Predict(ops_ctx, features, rng));
  }
}
BENCHMARK(BM_DenseVsSparseDeployment)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"synthetic"});

// ---- Thread-count sweeps (the tentpole speedup measurements). ----
//
// The Arg is the pool width; 0 selects the default (MCOND_NUM_THREADS or
// hardware concurrency). Each benchmark restores the default width on exit
// so orderings don't leak across benchmarks.

void SetPoolWidth(int64_t arg) {
  ThreadPool::Global().SetNumThreads(
      arg == 0 ? ThreadPool::DefaultNumThreads() : static_cast<int>(arg));
}

void BM_GemmThreads(benchmark::State& state) {
  SetPoolWidth(state.range(0));
  Rng rng(21);
  const Tensor a = rng.NormalTensor(1024, 1024);
  const Tensor b = rng.NormalTensor(1024, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 1024 * 1024 * 256);
  ThreadPool::Global().SetNumThreads(ThreadPool::DefaultNumThreads());
}
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->ArgNames({"threads"})->Unit(benchmark::kMillisecond);

void BM_GemmSerialRef(benchmark::State& state) {
  // The naive single-threaded reference: the speedup denominator that
  // includes the blocking win, not just the threading win.
  Rng rng(21);
  const Tensor a = rng.NormalTensor(1024, 1024);
  const Tensor b = rng.NormalTensor(1024, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 1024 * 1024 * 256);
}
BENCHMARK(BM_GemmSerialRef)->Unit(benchmark::kMillisecond);

void BM_GemmTransAThreads(benchmark::State& state) {
  SetPoolWidth(state.range(0));
  Rng rng(22);
  const Tensor a = rng.NormalTensor(1024, 256);
  const Tensor b = rng.NormalTensor(1024, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransA(a, b));
  }
  ThreadPool::Global().SetNumThreads(ThreadPool::DefaultNumThreads());
}
BENCHMARK(BM_GemmTransAThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->ArgNames({"threads"})->Unit(benchmark::kMillisecond);

void BM_SpMMThreads(benchmark::State& state) {
  // Reddit-shaped (scaled): dense-ish power-law-free SBM with a high mean
  // degree, the regime the serving path hits on the original graph.
  SetPoolWidth(state.range(0));
  SbmConfig config;
  config.num_nodes = 16384;
  config.num_classes = 8;
  config.feature_dim = 128;
  config.avg_degree = 50.0;
  Rng rng(23);
  Graph g = GenerateSbmGraph(config, rng);
  const Tensor& x = g.features();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.normalized_adjacency().SpMM(x));
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          g.normalized_adjacency().Nnz() *
                          config.feature_dim);
  ThreadPool::Global().SetNumThreads(ThreadPool::DefaultNumThreads());
}
BENCHMARK(BM_SpMMThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->ArgNames({"threads"})->Unit(benchmark::kMillisecond);

void BM_SoftmaxThreads(benchmark::State& state) {
  SetPoolWidth(state.range(0));
  Rng rng(24);
  const Tensor a = rng.NormalTensor(65536, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxRows(a));
  }
  ThreadPool::Global().SetNumThreads(ThreadPool::DefaultNumThreads());
}
BENCHMARK(BM_SoftmaxThreads)->Arg(1)->Arg(0)->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

// ---- SIMD tier sweeps (scalar vs AVX2 at a fixed pool width). ----
//
// The Arg is the tier (0 = scalar, 1 = avx2); avx2 variants skip with an
// error note on hosts/builds without AVX2+FMA rather than aborting, so the
// suite runs everywhere. Each benchmark restores the startup-resolved tier
// on exit.

bool EnterTier(benchmark::State& state) {
  if (state.range(0) == 1 &&
      !(simd::Avx2Compiled() && simd::CpuSupportsAvx2Fma())) {
    state.SkipWithError("AVX2 tier unavailable on this host/build");
    return false;
  }
  simd::SetTier(state.range(0) == 1 ? simd::Tier::kAvx2
                                    : simd::Tier::kScalar);
  return true;
}

void BM_GemmSimd(benchmark::State& state) {
  const simd::Tier saved = simd::ActiveTier();
  if (!EnterTier(state)) return;
  Rng rng(21);
  const Tensor a = rng.NormalTensor(1024, 1024);
  const Tensor b = rng.NormalTensor(1024, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 1024 * 1024 * 256);
  simd::SetTier(saved);
}
BENCHMARK(BM_GemmSimd)->Arg(0)->Arg(1)->ArgNames({"avx2"})
    ->Unit(benchmark::kMillisecond);

void BM_GemmTransBSimd(benchmark::State& state) {
  // The autograd backward shape (grad · Wᵀ): dot-product form.
  const simd::Tier saved = simd::ActiveTier();
  if (!EnterTier(state)) return;
  Rng rng(25);
  const Tensor a = rng.NormalTensor(1024, 256);
  const Tensor bt = rng.NormalTensor(1024, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransB(a, bt));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 1024 * 256 * 1024);
  simd::SetTier(saved);
}
BENCHMARK(BM_GemmTransBSimd)->Arg(0)->Arg(1)->ArgNames({"avx2"})
    ->Unit(benchmark::kMillisecond);

void BM_SpMMSimd(benchmark::State& state) {
  const simd::Tier saved = simd::ActiveTier();
  if (!EnterTier(state)) return;
  SbmConfig config;
  config.num_nodes = 16384;
  config.num_classes = 8;
  config.feature_dim = 128;
  config.avg_degree = 50.0;
  Rng rng(23);
  Graph g = GenerateSbmGraph(config, rng);
  const Tensor& x = g.features();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.normalized_adjacency().SpMM(x));
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          g.normalized_adjacency().Nnz() *
                          config.feature_dim);
  simd::SetTier(saved);
}
BENCHMARK(BM_SpMMSimd)->Arg(0)->Arg(1)->ArgNames({"avx2"})
    ->Unit(benchmark::kMillisecond);

void BM_SoftmaxSimd(benchmark::State& state) {
  const simd::Tier saved = simd::ActiveTier();
  if (!EnterTier(state)) return;
  Rng rng(24);
  const Tensor a = rng.NormalTensor(65536, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxRows(a));
  }
  simd::SetTier(saved);
}
BENCHMARK(BM_SoftmaxSimd)->Arg(0)->Arg(1)->ArgNames({"avx2"})
    ->Unit(benchmark::kMillisecond);

void BM_ElementwiseSimd(benchmark::State& state) {
  const simd::Tier saved = simd::ActiveTier();
  if (!EnterTier(state)) return;
  Rng rng(26);
  const Tensor a = rng.NormalTensor(4096, 256);
  const Tensor b = rng.NormalTensor(4096, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Relu(Add(Mul(a, b), b)));
  }
  simd::SetTier(saved);
}
BENCHMARK(BM_ElementwiseSimd)->Arg(0)->Arg(1)->ArgNames({"avx2"})
    ->Unit(benchmark::kMillisecond);

// ---- Smoke / checksum mode. ----

/// Order-independent-of-nothing checksum: folds the exact bit pattern of
/// every float in `t`, so ANY single-bit difference between two runs
/// changes the output.
uint64_t BitChecksum(const Tensor& t) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64.
  const float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    uint32_t bits;
    std::memcpy(&bits, &p[i], sizeof(bits));
    h = (h ^ bits) * 1099511628211ull;
  }
  return h;
}

uint64_t BitChecksum(const std::vector<float>& v) {
  uint64_t h = 1469598103934665603ull;
  for (float f : v) {
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    h = (h ^ bits) * 1099511628211ull;
  }
  return h;
}

int RunSmoke() {
  // Smoke digests are defined on the exact-oracle (scalar) tier: the AVX2
  // GEMM/softmax kernels are tolerance-bounded, not bit-identical, so their
  // checksums would differ per tier. An explicit MCOND_SIMD still wins —
  // that is how the AVX2 tier's own cross-thread-count determinism is
  // checked (MCOND_SIMD=avx2 tools/check_determinism.sh).
  if (std::getenv("MCOND_SIMD") == nullptr) {
    simd::SetTier(simd::Tier::kScalar);
  }
  std::printf("threads %d\n", ThreadPool::Global().NumThreads());
  std::printf("simd %s\n", simd::TierName(simd::ActiveTier()));
  Rng rng(99);
  const Tensor a = rng.NormalTensor(301, 257);
  const Tensor b = rng.NormalTensor(257, 129);
  const Tensor bt = rng.NormalTensor(129, 257);
  const Tensor at = rng.NormalTensor(257, 301);
  std::printf("matmul %016" PRIx64 "\n", BitChecksum(MatMul(a, b)));
  std::printf("matmul_ta %016" PRIx64 "\n", BitChecksum(MatMulTransA(at, b)));
  std::printf("matmul_tb %016" PRIx64 "\n", BitChecksum(MatMulTransB(a, bt)));
  std::printf("softmax %016" PRIx64 "\n", BitChecksum(SoftmaxRows(a)));
  std::printf("add %016" PRIx64 "\n",
              BitChecksum(Add(a, Scale(a, 0.5f))));

  SbmConfig config;
  config.num_nodes = 2048;
  config.num_classes = 8;
  config.feature_dim = 64;
  config.avg_degree = 16.0;
  Rng grng(7);
  Graph g = GenerateSbmGraph(config, grng);
  const CsrMatrix& norm = g.normalized_adjacency();
  std::printf("sym_normalize %016" PRIx64 "\n", BitChecksum(norm.values()));
  std::printf("row_normalize %016" PRIx64 "\n",
              BitChecksum(g.row_normalized_adjacency().values()));
  std::printf("spmm %016" PRIx64 "\n", BitChecksum(norm.SpMM(g.features())));
  const Tensor y = rng.NormalTensor(config.num_nodes, 32);
  std::printf("spmm_t %016" PRIx64 "\n", BitChecksum(norm.SpMMTransposed(y)));
  return 0;
}

}  // namespace
}  // namespace mcond

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return mcond::RunSmoke();
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Startup-resolved tier (MCOND_SIMD against the CPU probe) in the JSON
  // context, next to num_cpus — BENCH_kernels.json rows depend on both.
  ::benchmark::AddCustomContext(
      "mcond_simd_tier",
      mcond::simd::TierName(mcond::simd::ActiveTier()));
  ::benchmark::AddCustomContext(
      "mcond_simd_avx2_supported",
      (mcond::simd::Avx2Compiled() && mcond::simd::CpuSupportsAvx2Fma())
          ? "yes"
          : "no");
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
