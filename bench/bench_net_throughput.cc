// Network serving benchmark: drives the NetServer front-end over loopback
// TCP and compares it with in-process ConcurrentServer calls on the SAME
// registry tenants, so the reported delta is pure wire cost (framing +
// syscalls + the IO-thread hop) — the GNN math, replica pool, and queue
// are identical on both sides (docs/serving.md).
//
// Two tenants ("alpha", "beta" — distinct random-coreset artifacts of one
// dataset) serve from one ModelRegistry; closed-loop clients alternate
// across them, so every row exercises the multi-tenant path.
//
// Modes:
//   (default)  human-readable summary on pubmed-sim: an in-process row and
//              a loopback row for one configuration (--clients C
//              --server_threads K [--queue N] [--micro_batch B] [--passes
//              P], defaults 8/4/64/4/8), plus the derived net overhead.
//   --json     BENCH_kernels.json-style JSON on stdout (BENCH_net.json is
//              a committed snapshot of this).
//   --smoke    tiny-sim, one pass: ordered FNV-1a bit digests of every
//              tenant's logit stream served in-process and over loopback,
//              at server replica counts K=1 and K=8, in graph- and
//              node-batch modes, with the two tenants' clients running
//              CONCURRENTLY against one registry.
//              tools/check_determinism.sh diffs this output between kernel
//              thread widths and asserts every inproc_/net_ digest pair
//              matches — the loopback bit-identity gate.
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/logging.h"
#include "core/parallel.h"
#include "coreset/coreset.h"
#include "data/datasets.h"
#include "eval/batching.h"
#include "net/model_registry.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "nn/sgc.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mcond {
namespace {

constexpr uint64_t kFnvSeed = 1469598103934665603ull;

/// Bit-exact FNV-1a fold (same scheme as bench_serving_throughput).
uint64_t BitChecksumFold(uint64_t h, const Tensor& t) {
  const float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    uint32_t bits;
    std::memcpy(&bits, &p[i], sizeof(bits));
    h = (h ^ bits) * 1099511628211ull;
  }
  return h;
}

const char* const kTenants[] = {"alpha", "beta"};

/// Registry with two deterministic random-coreset tenants over `data` and
/// an untrained deterministically-initialized SGC per tenant (forward cost
/// and bit patterns don't care about training; the factory must only be
/// deterministic).
std::unique_ptr<net::ModelRegistry> MakeRegistry(
    const InductiveDataset& data, int replicas, int queue_capacity,
    int micro_batch) {
  auto factory = [](const CondensedGraph& cg)
      -> StatusOr<std::unique_ptr<GnnModel>> {
    GnnConfig gc;
    Rng rng(18);
    return std::unique_ptr<GnnModel>(std::make_unique<Sgc>(
        cg.graph.FeatureDim(), cg.graph.num_classes(), gc, rng));
  };
  auto registry = std::make_unique<net::ModelRegistry>(factory);
  net::TenantConfig cfg;
  cfg.num_replicas = replicas;
  cfg.queue_capacity = queue_capacity;
  cfg.micro_batch = micro_batch;
  const Graph& train = data.train_graph;
  const int64_t n_select =
      std::max<int64_t>(2 * train.num_classes(), train.NumNodes() / 20);
  uint64_t seed = 18;
  for (const char* name : kTenants) {
    Rng rng(seed++);
    const std::vector<int64_t> selected = SelectCoreset(
        CoresetMethod::kRandom, train, train.features(), n_select, rng);
    const Status st =
        registry->AddTenant(name, BuildCoresetGraph(train, selected), cfg);
    MCOND_CHECK(st.ok()) << st.ToString();
  }
  return registry;
}

/// Ordered digest of one tenant's batch stream served in-process through
/// its own ConcurrentServer (the reference side of the loopback gate).
uint64_t InprocDigest(net::Tenant* tenant,
                      const std::vector<HeldOutBatch>& batches,
                      bool graph_batch) {
  uint64_t h = kFnvSeed;
  Tensor out;
  for (const HeldOutBatch& batch : batches) {
    const Status st = tenant->server->ServeSync(batch, graph_batch, &out);
    MCOND_CHECK(st.ok()) << st.ToString();
    h = BitChecksumFold(h, out);
  }
  return h;
}

/// Ordered digest of the same stream served over loopback TCP.
uint64_t NetDigest(int port, const char* tenant,
                   const std::vector<HeldOutBatch>& batches,
                   bool graph_batch) {
  net::NetClient client;
  Status st = client.Connect("127.0.0.1", port);
  MCOND_CHECK(st.ok()) << st.ToString();
  uint64_t h = kFnvSeed;
  net::NetResponse resp;
  for (const HeldOutBatch& batch : batches) {
    st = client.Call(tenant, batch, graph_batch, &resp);
    MCOND_CHECK(st.ok()) << st.ToString();
    MCOND_CHECK(resp.status == net::WireStatus::kOk)
        << net::WireStatusName(resp.status) << ": " << resp.message;
    h = BitChecksumFold(h, resp.logits);
  }
  return h;
}

int RunSmoke() {
  std::printf("threads %d\n", ThreadPool::Global().NumThreads());
  InductiveDataset data = MakeDatasetByName("tiny-sim", 17);
  const std::vector<HeldOutBatch> batches = SplitIntoBatches(data.test, 8);
  for (const int k : {1, 8}) {
    std::unique_ptr<net::ModelRegistry> registry =
        MakeRegistry(data, k, /*queue_capacity=*/64,
                     /*micro_batch=*/k == 1 ? 1 : 4);
    net::NetServerOptions options;  // ephemeral loopback port
    net::NetServer server(*registry, options);
    const Status st = server.Start();
    MCOND_CHECK(st.ok()) << st.ToString();
    for (const bool graph_batch : {true, false}) {
      const char* tag = graph_batch ? "graph" : "node";
      // In-process reference digests, then the SAME streams over the
      // socket with both tenants' clients running concurrently against
      // the one registry.
      uint64_t inproc[2];
      uint64_t net[2];
      for (int t = 0; t < 2; ++t) {
        inproc[t] = InprocDigest(registry->Find(kTenants[t]), batches,
                                 graph_batch);
      }
      std::vector<std::thread> clients;
      for (int t = 0; t < 2; ++t) {
        clients.emplace_back([&, t] {
          net[t] = NetDigest(server.port(), kTenants[t], batches,
                             graph_batch);
        });
      }
      for (std::thread& c : clients) c.join();
      for (int t = 0; t < 2; ++t) {
        std::printf("inproc_k%d_%s_%s %016" PRIx64 "\n", k, kTenants[t],
                    tag, inproc[t]);
        std::printf("net_k%d_%s_%s %016" PRIx64 "\n", k, kTenants[t], tag,
                    net[t]);
      }
    }
    server.Stop();
  }
  return 0;
}

struct BenchOptions {
  int clients = 8;
  int server_threads = 4;
  int queue_capacity = 64;
  int micro_batch = 4;
  int passes = 8;
};

struct RowStats {
  int64_t requests = 0;
  int64_t rejected = 0;
  double requests_per_sec = 0.0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
};

/// Closed-loop in-process row: C client threads alternate across the two
/// tenants' ConcurrentServers directly, no socket.
RowStats RunInproc(net::ModelRegistry& registry,
                   const std::vector<HeldOutBatch>& batches,
                   const BenchOptions& opt) {
  obs::Histogram& hist = obs::GetHistogram("mcond.net.bench_inproc_us");
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> rejected{0};
  obs::TraceSpan wall("bench.net_inproc", /*always_time=*/true);
  std::vector<std::thread> threads;
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      net::Tenant* tenant = registry.Find(kTenants[c % 2]);
      Tensor out;
      int64_t done = 0, shed = 0;
      for (int pass = 0; pass < opt.passes; ++pass) {
        for (const HeldOutBatch& batch : batches) {
          obs::TraceSpan span("bench.inproc_call", /*always_time=*/true);
          const Status st =
              tenant->server->ServeSync(batch, /*graph_batch=*/true, &out);
          if (!st.ok()) {  // bounded-queue reject under oversubscription
            ++shed;
            continue;
          }
          hist.Record(span.ElapsedMicros());
          ++done;
        }
      }
      completed.fetch_add(done);
      rejected.fetch_add(shed);
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();
  RowStats stats;
  stats.requests = completed.load();
  stats.rejected = rejected.load();
  stats.requests_per_sec = seconds > 0.0 ? stats.requests / seconds : 0.0;
  stats.p50_us = obs::HistogramApproxQuantile(hist, 0.5);
  stats.p99_us = obs::HistogramApproxQuantile(hist, 0.99);
  return stats;
}

/// The same closed loop through loopback TCP: one NetClient connection per
/// client thread. p50/p99 are CLIENT-observed round-trip times, so framing,
/// syscalls, and the IO-thread hop are all inside the measurement.
RowStats RunNet(int port, const std::vector<HeldOutBatch>& batches,
                const BenchOptions& opt) {
  obs::Histogram& hist = obs::GetHistogram("mcond.net.bench_call_us");
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> rejected{0};
  obs::TraceSpan wall("bench.net_loopback", /*always_time=*/true);
  std::vector<std::thread> threads;
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      net::NetClient client;
      Status st = client.Connect("127.0.0.1", port);
      MCOND_CHECK(st.ok()) << st.ToString();
      net::NetResponse resp;
      int64_t done = 0, shed = 0;
      for (int pass = 0; pass < opt.passes; ++pass) {
        for (const HeldOutBatch& batch : batches) {
          obs::TraceSpan span("bench.net_call", /*always_time=*/true);
          st = client.Call(kTenants[c % 2], batch, /*graph_batch=*/true,
                           &resp);
          MCOND_CHECK(st.ok()) << st.ToString();
          if (resp.status == net::WireStatus::kRejected) {
            ++shed;
            continue;
          }
          MCOND_CHECK(resp.status == net::WireStatus::kOk)
              << net::WireStatusName(resp.status) << ": " << resp.message;
          hist.Record(span.ElapsedMicros());
          ++done;
        }
      }
      completed.fetch_add(done);
      rejected.fetch_add(shed);
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();
  RowStats stats;
  stats.requests = completed.load();
  stats.rejected = rejected.load();
  stats.requests_per_sec = seconds > 0.0 ? stats.requests / seconds : 0.0;
  stats.p50_us = obs::HistogramApproxQuantile(hist, 0.5);
  stats.p99_us = obs::HistogramApproxQuantile(hist, 0.99);
  return stats;
}

int RunBench(bool json, const BenchOptions& opt) {
  const std::string dataset = "pubmed-sim";
  const int64_t batch_size = 32;
  InductiveDataset data = MakeDatasetByName(dataset, 17);
  const std::vector<HeldOutBatch> batches =
      SplitIntoBatches(data.test, batch_size);
  std::unique_ptr<net::ModelRegistry> registry = MakeRegistry(
      data, opt.server_threads, opt.queue_capacity, opt.micro_batch);

  const RowStats inproc = RunInproc(*registry, batches, opt);

  net::NetServerOptions options;  // ephemeral loopback port
  options.max_connections = opt.clients + 4;
  net::NetServer server(*registry, options);
  const Status st = server.Start();
  MCOND_CHECK(st.ok()) << st.ToString();
  const RowStats net = RunNet(server.port(), batches, opt);
  server.Stop();

  char inproc_name[64], net_name[64];
  std::snprintf(inproc_name, sizeof(inproc_name),
                "inproc/concurrent_c%d_k%d", opt.clients,
                opt.server_threads);
  std::snprintf(net_name, sizeof(net_name), "net/loopback_c%d_k%d",
                opt.clients, opt.server_threads);
  if (json) {
    std::printf("{\n");
    std::printf(
        "  \"note\": \"Loopback network serving vs in-process on the same "
        "two-tenant ModelRegistry: %s, batch_size %lld, %d passes, %d "
        "closed-loop clients alternating across tenants, %d replicas per "
        "tenant, queue %d, micro-batch %d, graph-batch mode. The inproc "
        "row calls ConcurrentServer::ServeSync directly; the net row "
        "drives the identical tenants through the wire protocol over "
        "loopback TCP, so the delta is pure wire cost (framing, syscalls, "
        "IO-thread hop). p50/p99 are client-observed round trips from "
        "pow2-bucket histograms. Loopback logits are bit-identical to "
        "in-process (ctest check_determinism). context records the capture "
        "machine's CPU count; rerun bench_net_throughput --json on real "
        "hardware and replace this file.\",\n",
        dataset.c_str(), static_cast<long long>(batch_size), opt.passes,
        opt.clients, opt.server_threads, opt.queue_capacity,
        opt.micro_batch);
    std::printf("  \"context\": {\"num_cpus\": %d, \"threads\": %d},\n",
                ThreadPool::DefaultNumThreads(),
                ThreadPool::Global().NumThreads());
    std::printf("  \"benchmarks\": [\n");
    const RowStats* rows[] = {&inproc, &net};
    const char* names[] = {inproc_name, net_name};
    for (int i = 0; i < 2; ++i) {
      std::printf("    {\"name\": \"%s\", \"requests\": %lld, "
                  "\"rejected\": %lld, \"requests_per_sec\": %.2f, "
                  "\"p50_us\": %llu, \"p99_us\": %llu}%s\n",
                  names[i], static_cast<long long>(rows[i]->requests),
                  static_cast<long long>(rows[i]->rejected),
                  rows[i]->requests_per_sec,
                  static_cast<unsigned long long>(rows[i]->p50_us),
                  static_cast<unsigned long long>(rows[i]->p99_us),
                  i == 0 ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("network serving on %s (batch %lld, %d passes, %d clients, "
                "%d replicas/tenant, 2 tenants)\n",
                dataset.c_str(), static_cast<long long>(batch_size),
                opt.passes, opt.clients, opt.server_threads);
    const RowStats* rows[] = {&inproc, &net};
    const char* names[] = {inproc_name, net_name};
    for (int i = 0; i < 2; ++i) {
      std::printf("  %-26s %9.2f req/s   p50 %6llu us   p99 %6llu us",
                  names[i], rows[i]->requests_per_sec,
                  static_cast<unsigned long long>(rows[i]->p50_us),
                  static_cast<unsigned long long>(rows[i]->p99_us));
      if (rows[i]->rejected > 0) {
        std::printf("   rejected %lld",
                    static_cast<long long>(rows[i]->rejected));
      }
      std::printf("\n");
    }
    if (net.requests_per_sec > 0.0) {
      std::printf("  net overhead: %.1f%% req/s, +%lld us p50\n",
                  (inproc.requests_per_sec / net.requests_per_sec - 1.0) *
                      100.0,
                  static_cast<long long>(net.p50_us) -
                      static_cast<long long>(inproc.p50_us));
    }
  }
  return 0;
}

}  // namespace
}  // namespace mcond

int main(int argc, char** argv) {
  bool json = false;
  mcond::BenchOptions opt;
  const auto int_flag = [&](int i, const char* name, int* out) {
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      *out = std::atoi(argv[i + 1]);
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return mcond::RunSmoke();
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (int_flag(i, "--clients", &opt.clients) ||
        int_flag(i, "--server_threads", &opt.server_threads) ||
        int_flag(i, "--queue", &opt.queue_capacity) ||
        int_flag(i, "--micro_batch", &opt.micro_batch) ||
        int_flag(i, "--passes", &opt.passes)) {
      ++i;
    }
  }
  return mcond::RunBench(json, opt);
}
