// Fig. 6: sparsification trade-off — accuracy and mapping sparsity as the
// threshold δ (Eq. 14) sweeps, for MCond_OS under the node-batch setting.
// One condensation per dataset; every δ re-thresholds the same dense
// artifacts, exactly like the paper's post-training sweep.
#include <iostream>

#include "common.h"

int main() {
  using namespace mcond;
  using namespace mcond::bench;
  const BenchContext ctx = GetBenchContext();
  std::cout << "=== Fig. 6: accuracy vs mapping sparsity under δ "
               "(MCond_OS, node batch) ===\n";

  for (const std::string& name : ctx.datasets) {
    const DatasetSpec spec = SpecForBench(name, ctx);
    const double ratio = spec.reduction_ratios.back();
    InductiveDataset data = MakeDataset(spec, 900);
    const int64_t n_syn = SyntheticNodeCount(data.train_graph, ratio);
    MCondConfig config = ConfigForDataset(spec, ctx.fast);
    MCondResult mcond =
        RunMCond(data.train_graph, data.val, n_syn, config, 900);
    // O-trained model (the OS setting).
    std::unique_ptr<GnnModel> model =
        TrainSgcOn(data.train_graph, 901, ctx.fast ? 60 : 200);
    Rng rng(902);

    std::cout << "\n--- " << spec.name << " (r="
              << FormatFloat(ratio * 100, 2) << "%, N'=" << n_syn
              << ", uniform weight=" << FormatFloat(1.0 / n_syn, 4)
              << ") ---\n";
    ResultTable table({"delta", "sparsity(%)", "accuracy(%)", "time(ms)"});
    const double uniform = 1.0 / static_cast<double>(n_syn);
    // δ grid spans from keep-everything to well above the uniform weight.
    const double deltas[] = {0.0,           uniform * 0.1, uniform * 0.3,
                             uniform * 0.6, uniform * 1.0, uniform * 1.5,
                             uniform * 3.0, uniform * 6.0};
    const int64_t dense_entries =
        mcond.dense_mapping.rows() * mcond.dense_mapping.cols();
    for (double delta : deltas) {
      CondensedGraph cg =
          mcond.Sparsify(config.mu, static_cast<float>(delta));
      if (cg.mapping.Nnz() == 0) {
        table.AddRow({FormatFloat(delta, 4), "100.00", "-", "-"});
        continue;
      }
      InferenceResult res =
          ServeOnCondensed(*model, cg, data.test, false, rng, 2);
      const double sparsity =
          1.0 - static_cast<double>(cg.mapping.Nnz()) /
                    static_cast<double>(dense_entries);
      table.AddRow({FormatFloat(delta, 4), FormatFloat(sparsity * 100, 2),
                    FormatFloat(res.accuracy * 100, 2),
                    FormatMillis(res.seconds)});
    }
    table.Print();
  }
  std::cout << "\nExpected shape (paper Fig. 6): accuracy first improves as "
               "δ suppresses noisy weights, then collapses once δ prunes "
               "informative entries.\n";
  return 0;
}
