// Fig. 3: inference time and memory usage under the graph-batch setting,
// per dataset and reduction ratio, with the MCond-vs-Whole acceleration and
// compression rates called out (the paper's headline 121.5× / 48.0× on
// Reddit appear here, scaled to the simulated datasets).
#include <iostream>

#include "common.h"

int main() {
  using namespace mcond;
  using namespace mcond::bench;
  const BenchContext ctx = GetBenchContext();
  std::cout << "=== Fig. 3: time (ms) & memory, graph batch ===\n";

  for (const std::string& name : ctx.datasets) {
    const DatasetSpec spec = SpecForBench(name, ctx);
    for (double ratio : spec.reduction_ratios) {
      const std::vector<MethodResult> results =
          RunMethodSuite(spec, ratio, 300, /*epochs_scale=*/0.5);
      std::cout << "\n--- " << spec.name << ", r="
                << FormatFloat(ratio * 100, 2) << "% ---\n";
      ResultTable table({"method", "time(ms)", "memory"});
      double whole_time = 0.0, whole_mem = 0.0;
      double mcond_time = 0.0, mcond_mem = 0.0;
      for (const MethodResult& r : results) {
        table.AddRow({r.method, FormatMillis(r.graph_batch.seconds),
                      FormatBytes(
                          static_cast<double>(r.graph_batch.memory_bytes))});
        if (r.method == "Whole") {
          whole_time = r.graph_batch.seconds;
          whole_mem = static_cast<double>(r.graph_batch.memory_bytes);
        }
        // MCond_OS/SS share the synthetic deployment; report its rate once.
        if (r.method == "MCond_SS") {
          mcond_time = r.graph_batch.seconds;
          mcond_mem = static_cast<double>(r.graph_batch.memory_bytes);
        }
      }
      table.Print();
      if (mcond_time > 0.0) {
        std::cout << "MCond vs Whole: acceleration "
                  << FormatRatio(whole_time / mcond_time) << ", compression "
                  << FormatRatio(whole_mem / mcond_mem) << "\n";
      }
    }
  }
  return 0;
}
