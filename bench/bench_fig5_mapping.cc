// Fig. 5: mapping-matrix visualization and initialization ablation on the
// Reddit stand-in (MCond_SS, node batch):
//   (a) class-by-class correlation of the *trained* mapping — diagonal
//       dominance means original nodes map to same-class synthetic nodes;
//   (b) the same correlation at initialization;
//   (c) the mapping-loss trajectory under class-aware vs random init, plus
//       final accuracies.
#include <iostream>

#include "common.h"

namespace {

using namespace mcond;
using namespace mcond::bench;

/// Aggregates an N×N' mapping into a C×C class-correlation matrix: entry
/// (a, b) is the mean mapping weight from class-a original nodes to class-b
/// synthetic nodes, row-normalized for display.
Tensor ClassCorrelation(const Tensor& mapping,
                        const std::vector<int64_t>& original_labels,
                        const std::vector<int64_t>& synthetic_labels,
                        int64_t num_classes) {
  Tensor corr(num_classes, num_classes);
  Tensor counts(num_classes, num_classes);
  for (int64_t i = 0; i < mapping.rows(); ++i) {
    const int64_t yi = original_labels[static_cast<size_t>(i)];
    if (yi < 0) continue;
    for (int64_t j = 0; j < mapping.cols(); ++j) {
      const int64_t yj = synthetic_labels[static_cast<size_t>(j)];
      corr.At(yi, yj) += mapping.At(i, j);
      counts.At(yi, yj) += 1.0f;
    }
  }
  for (int64_t a = 0; a < num_classes; ++a) {
    float row_sum = 0.0f;
    for (int64_t b = 0; b < num_classes; ++b) {
      if (counts.At(a, b) > 0.0f) corr.At(a, b) /= counts.At(a, b);
      row_sum += corr.At(a, b);
    }
    if (row_sum > 0.0f) {
      for (int64_t b = 0; b < num_classes; ++b) corr.At(a, b) /= row_sum;
    }
  }
  return corr;
}

/// Text heatmap: darker glyph = more mass.
void PrintHeatmap(const Tensor& m) {
  const char* shades = " .:-=+*#%@";
  float mx = 1e-9f;
  for (int64_t i = 0; i < m.size(); ++i) {
    mx = std::max(mx, m.data()[i]);
  }
  for (int64_t i = 0; i < m.rows(); ++i) {
    std::cout << "  ";
    for (int64_t j = 0; j < m.cols(); ++j) {
      const int level = std::min(
          9, static_cast<int>(m.At(i, j) / mx * 9.999f));
      std::cout << shades[level];
    }
    std::cout << "\n";
  }
}

double DiagonalMass(const Tensor& corr) {
  double diag = 0.0, total = 0.0;
  for (int64_t i = 0; i < corr.rows(); ++i) {
    for (int64_t j = 0; j < corr.cols(); ++j) {
      total += corr.At(i, j);
      if (i == j) diag += corr.At(i, j);
    }
  }
  return total > 0.0 ? diag / total : 0.0;
}

}  // namespace

int main() {
  const BenchContext ctx = GetBenchContext();
  const DatasetSpec spec = SpecForBench("reddit-sim", ctx);
  const double ratio = spec.reduction_ratios.front();
  std::cout << "=== Fig. 5: mapping visualization & initialization ("
            << spec.name << ", r=" << FormatFloat(ratio * 100, 2)
            << "%, MCond_SS node batch) ===\n";

  InductiveDataset data = MakeDataset(spec, 800);
  const int64_t n_syn = SyntheticNodeCount(data.train_graph, ratio);
  const int64_t c = data.train_graph.num_classes();

  struct InitRun {
    const char* label;
    bool class_aware;
    MCondResult result;
    double accuracy;
  };
  std::vector<InitRun> runs;
  for (bool class_aware : {true, false}) {
    MCondConfig config = ConfigForDataset(spec, ctx.fast);
    config.class_aware_init = class_aware;
    MCondResult r =
        RunMCond(data.train_graph, data.val, n_syn, config, 800);
    std::unique_ptr<GnnModel> model =
        TrainSgcOn(r.condensed.graph, 801, ctx.fast ? 100 : 300);
    Rng rng(802);
    const double acc =
        ServeOnCondensed(*model, r.condensed, data.test, false, rng, 1)
            .accuracy;
    runs.push_back({class_aware ? "class-aware" : "random", class_aware,
                    std::move(r), acc});
  }
  const MCondResult& trained = runs[0].result;

  // (a) Trained mapping class correlation.
  const Tensor corr_trained =
      ClassCorrelation(trained.dense_mapping, data.train_graph.labels(),
                       trained.synthetic_labels, c);
  std::cout << "\n(a) trained mapping class correlation (diagonal mass "
            << FormatFloat(DiagonalMass(corr_trained), 3) << ")\n";
  PrintHeatmap(corr_trained);

  // (b) Initialization class correlation: rebuild the initial mapping.
  MappingMatrix init(data.train_graph.NumNodes(), n_syn, MappingConfig{});
  init.InitializeClassAware(data.train_graph.labels(),
                            trained.synthetic_labels);
  const Tensor corr_init =
      ClassCorrelation(init.NormalizedTensor(), data.train_graph.labels(),
                       trained.synthetic_labels, c);
  std::cout << "\n(b) class-aware initialization correlation (diagonal mass "
            << FormatFloat(DiagonalMass(corr_init), 3) << ")\n";
  PrintHeatmap(corr_init);

  // (c) Loss trajectories and accuracies.
  std::cout << "\n(c) mapping-loss trajectory (first 10 logged steps)\n";
  ResultTable table({"init", "L_M[0]", "L_M[2]", "L_M[4]", "L_M[6]",
                     "L_M[8]", "final", "accuracy"});
  for (const InitRun& run : runs) {
    const auto& h = run.result.m_loss_history;
    auto at = [&h](size_t i) {
      return i < h.size() ? FormatFloat(h[i], 4) : std::string("-");
    };
    table.AddRow({run.label, at(0), at(2), at(4), at(6), at(8),
                  h.empty() ? "-" : FormatFloat(h.back(), 4),
                  FormatFloat(run.accuracy * 100, 2)});
  }
  table.Print();
  std::cout << "\nClass-aware initialization should start lower, converge "
               "faster, and end at or above the random-init accuracy "
               "(paper: 88.15% vs 87.82%).\n";
  return 0;
}
