// Extension bench (beyond the paper's tables): two serving-side additions
// this library ships on top of MCond —
//   1. multilevel heavy-edge coarsening as an extra task-agnostic reduction
//      baseline (the paper's §V-B surveys coarsening but does not evaluate
//      it), served through the same aM path as every other method;
//   2. the incremental SGC serving cache, which reuses the base graph's
//      propagated features per batch instead of recomputing Â² over the
//      composed graph.
#include <chrono>
#include <iostream>

#include "coarsen/coarsening.h"
#include "common.h"
#include "eval/batching.h"
#include "eval/serving_cache.h"
#include "nn/metrics.h"
#include "nn/sgc.h"

namespace {

using namespace mcond;
using namespace mcond::bench;
using Clock = std::chrono::steady_clock;

}  // namespace

int main() {
  const BenchContext ctx = GetBenchContext();
  std::cout << "=== Extension: coarsening baseline + incremental serving "
               "===\n";
  for (const std::string& name : ctx.datasets) {
    const DatasetSpec spec = SpecForBench(name, ctx);
    const double ratio = spec.reduction_ratios.back();
    InductiveDataset data = MakeDataset(spec, 1200);
    const int64_t n_syn = SyntheticNodeCount(data.train_graph, ratio);

    // Artifacts: coarsening vs MCond.
    Rng coarse_rng(1201);
    CondensedGraph coarse = CoarsenGraph(data.train_graph, n_syn,
                                         CoarseningConfig{}, coarse_rng);
    MCondConfig config = ConfigForDataset(spec, ctx.fast);
    MCondResult mcond =
        RunMCond(data.train_graph, data.val, n_syn, config, 1200);

    std::unique_ptr<GnnModel> model_o =
        TrainSgcOn(data.train_graph, 1202, ctx.fast ? 60 : 200);
    Rng rng(1203);

    std::cout << "\n--- " << spec.name << " (N'=" << n_syn << ") ---\n";
    ResultTable table({"method", "acc(graph)", "acc(node)", "time(ms)"});
    for (const auto& [label, cg] :
         {std::pair<const char*, const CondensedGraph*>{"Coarsen", &coarse},
          {"MCond_OS", &mcond.condensed}}) {
      InferenceResult gb =
          ServeOnCondensed(*model_o, *cg, data.test, true, rng, 3);
      InferenceResult nb =
          ServeOnCondensed(*model_o, *cg, data.test, false, rng, 3);
      table.AddRow({label, FormatFloat(gb.accuracy * 100, 2),
                    FormatFloat(nb.accuracy * 100, 2),
                    FormatMillis(gb.seconds)});
    }
    table.Print();

    // Incremental serving: same artifact, per-batch stream, exact vs
    // cached propagation.
    GnnConfig gc;
    Rng srng(1204);
    Sgc sgc(data.train_graph.FeatureDim(), data.train_graph.num_classes(),
            gc, srng);
    {
      GraphOperators ops_ctx =
          GraphOperators::FromGraph(mcond.condensed.graph);
      std::vector<int64_t> all(mcond.condensed.graph.NumNodes());
      for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
      TrainConfig tc;
      tc.epochs = ctx.fast ? 100 : 300;
      TrainNodeClassifier(sgc, ops_ctx, mcond.condensed.graph.features(),
                          mcond.condensed.graph.labels(), all, tc, srng);
    }
    SgcServingCache cache(mcond.condensed, sgc);
    const std::vector<HeldOutBatch> stream =
        SplitIntoBatches(data.test, 64);
    double exact_s = 0.0, fast_s = 0.0;
    double exact_correct = 0.0, fast_correct = 0.0;
    int64_t total = 0;
    for (const HeldOutBatch& b : stream) {
      auto t0 = Clock::now();
      const Tensor exact = cache.ServeExact(b, false, rng);
      auto t1 = Clock::now();
      const Tensor fast = cache.Serve(b, false, rng);
      auto t2 = Clock::now();
      exact_s += std::chrono::duration<double>(t1 - t0).count();
      fast_s += std::chrono::duration<double>(t2 - t1).count();
      exact_correct += AccuracyFromLogits(exact, b.labels) * b.size();
      fast_correct += AccuracyFromLogits(fast, b.labels) * b.size();
      total += b.size();
    }
    std::cout << "incremental serving over " << stream.size()
              << " batches: exact " << FormatMillis(exact_s / stream.size())
              << " ms/batch (acc "
              << FormatFloat(exact_correct / total * 100, 2)
              << "), cached " << FormatMillis(fast_s / stream.size())
              << " ms/batch (acc "
              << FormatFloat(fast_correct / total * 100, 2) << "), speedup "
              << FormatRatio(exact_s / fast_s) << "\n";
  }
  return 0;
}
