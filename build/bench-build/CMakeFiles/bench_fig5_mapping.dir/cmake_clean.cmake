file(REMOVE_RECURSE
  "../bench/bench_fig5_mapping"
  "../bench/bench_fig5_mapping.pdb"
  "CMakeFiles/bench_fig5_mapping.dir/bench_fig5_mapping.cc.o"
  "CMakeFiles/bench_fig5_mapping.dir/bench_fig5_mapping.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
