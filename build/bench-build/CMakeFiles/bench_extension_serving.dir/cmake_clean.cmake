file(REMOVE_RECURSE
  "../bench/bench_extension_serving"
  "../bench/bench_extension_serving.pdb"
  "CMakeFiles/bench_extension_serving.dir/bench_extension_serving.cc.o"
  "CMakeFiles/bench_extension_serving.dir/bench_extension_serving.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
