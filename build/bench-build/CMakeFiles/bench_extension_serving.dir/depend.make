# Empty dependencies file for bench_extension_serving.
# This may be replaced when dependencies are built.
