file(REMOVE_RECURSE
  "../bench/bench_fig6_sparsification"
  "../bench/bench_fig6_sparsification.pdb"
  "CMakeFiles/bench_fig6_sparsification.dir/bench_fig6_sparsification.cc.o"
  "CMakeFiles/bench_fig6_sparsification.dir/bench_fig6_sparsification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sparsification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
