file(REMOVE_RECURSE
  "../bench/bench_fig4_node_batch"
  "../bench/bench_fig4_node_batch.pdb"
  "CMakeFiles/bench_fig4_node_batch.dir/bench_fig4_node_batch.cc.o"
  "CMakeFiles/bench_fig4_node_batch.dir/bench_fig4_node_batch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_node_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
