# Empty dependencies file for bench_table4_architectures.
# This may be replaced when dependencies are built.
