file(REMOVE_RECURSE
  "../bench/bench_table4_architectures"
  "../bench/bench_table4_architectures.pdb"
  "CMakeFiles/bench_table4_architectures.dir/bench_table4_architectures.cc.o"
  "CMakeFiles/bench_table4_architectures.dir/bench_table4_architectures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
