file(REMOVE_RECURSE
  "libmcond_bench_common.a"
)
