file(REMOVE_RECURSE
  "CMakeFiles/mcond_bench_common.dir/common.cc.o"
  "CMakeFiles/mcond_bench_common.dir/common.cc.o.d"
  "libmcond_bench_common.a"
  "libmcond_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
