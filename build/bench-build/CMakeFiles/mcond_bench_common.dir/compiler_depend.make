# Empty compiler generated dependencies file for mcond_bench_common.
# This may be replaced when dependencies are built.
