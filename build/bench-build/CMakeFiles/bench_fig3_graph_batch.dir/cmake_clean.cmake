file(REMOVE_RECURSE
  "../bench/bench_fig3_graph_batch"
  "../bench/bench_fig3_graph_batch.pdb"
  "CMakeFiles/bench_fig3_graph_batch.dir/bench_fig3_graph_batch.cc.o"
  "CMakeFiles/bench_fig3_graph_batch.dir/bench_fig3_graph_batch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_graph_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
