# Empty dependencies file for bench_fig3_graph_batch.
# This may be replaced when dependencies are built.
