file(REMOVE_RECURSE
  "../bench/bench_table3_propagation"
  "../bench/bench_table3_propagation.pdb"
  "CMakeFiles/bench_table3_propagation.dir/bench_table3_propagation.cc.o"
  "CMakeFiles/bench_table3_propagation.dir/bench_table3_propagation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
