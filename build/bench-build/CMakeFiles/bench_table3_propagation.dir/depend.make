# Empty dependencies file for bench_table3_propagation.
# This may be replaced when dependencies are built.
