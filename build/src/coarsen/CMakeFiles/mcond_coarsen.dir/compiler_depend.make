# Empty compiler generated dependencies file for mcond_coarsen.
# This may be replaced when dependencies are built.
