file(REMOVE_RECURSE
  "libmcond_coarsen.a"
)
