file(REMOVE_RECURSE
  "CMakeFiles/mcond_coarsen.dir/coarsening.cc.o"
  "CMakeFiles/mcond_coarsen.dir/coarsening.cc.o.d"
  "libmcond_coarsen.a"
  "libmcond_coarsen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_coarsen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
