# Empty compiler generated dependencies file for mcond_nn.
# This may be replaced when dependencies are built.
