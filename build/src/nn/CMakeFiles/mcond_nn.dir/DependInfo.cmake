
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/appnp.cc" "src/nn/CMakeFiles/mcond_nn.dir/appnp.cc.o" "gcc" "src/nn/CMakeFiles/mcond_nn.dir/appnp.cc.o.d"
  "/root/repo/src/nn/cheby.cc" "src/nn/CMakeFiles/mcond_nn.dir/cheby.cc.o" "gcc" "src/nn/CMakeFiles/mcond_nn.dir/cheby.cc.o.d"
  "/root/repo/src/nn/gcn.cc" "src/nn/CMakeFiles/mcond_nn.dir/gcn.cc.o" "gcc" "src/nn/CMakeFiles/mcond_nn.dir/gcn.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/mcond_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/mcond_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/metrics.cc" "src/nn/CMakeFiles/mcond_nn.dir/metrics.cc.o" "gcc" "src/nn/CMakeFiles/mcond_nn.dir/metrics.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/mcond_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/mcond_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/sage.cc" "src/nn/CMakeFiles/mcond_nn.dir/sage.cc.o" "gcc" "src/nn/CMakeFiles/mcond_nn.dir/sage.cc.o.d"
  "/root/repo/src/nn/sgc.cc" "src/nn/CMakeFiles/mcond_nn.dir/sgc.cc.o" "gcc" "src/nn/CMakeFiles/mcond_nn.dir/sgc.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/mcond_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/mcond_nn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/mcond_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcond_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mcond_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
