file(REMOVE_RECURSE
  "CMakeFiles/mcond_nn.dir/appnp.cc.o"
  "CMakeFiles/mcond_nn.dir/appnp.cc.o.d"
  "CMakeFiles/mcond_nn.dir/cheby.cc.o"
  "CMakeFiles/mcond_nn.dir/cheby.cc.o.d"
  "CMakeFiles/mcond_nn.dir/gcn.cc.o"
  "CMakeFiles/mcond_nn.dir/gcn.cc.o.d"
  "CMakeFiles/mcond_nn.dir/linear.cc.o"
  "CMakeFiles/mcond_nn.dir/linear.cc.o.d"
  "CMakeFiles/mcond_nn.dir/metrics.cc.o"
  "CMakeFiles/mcond_nn.dir/metrics.cc.o.d"
  "CMakeFiles/mcond_nn.dir/module.cc.o"
  "CMakeFiles/mcond_nn.dir/module.cc.o.d"
  "CMakeFiles/mcond_nn.dir/sage.cc.o"
  "CMakeFiles/mcond_nn.dir/sage.cc.o.d"
  "CMakeFiles/mcond_nn.dir/sgc.cc.o"
  "CMakeFiles/mcond_nn.dir/sgc.cc.o.d"
  "CMakeFiles/mcond_nn.dir/trainer.cc.o"
  "CMakeFiles/mcond_nn.dir/trainer.cc.o.d"
  "libmcond_nn.a"
  "libmcond_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
