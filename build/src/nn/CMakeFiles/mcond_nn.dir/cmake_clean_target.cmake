file(REMOVE_RECURSE
  "libmcond_nn.a"
)
