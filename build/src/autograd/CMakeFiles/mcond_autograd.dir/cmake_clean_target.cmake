file(REMOVE_RECURSE
  "libmcond_autograd.a"
)
