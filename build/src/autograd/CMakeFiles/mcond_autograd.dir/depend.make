# Empty dependencies file for mcond_autograd.
# This may be replaced when dependencies are built.
