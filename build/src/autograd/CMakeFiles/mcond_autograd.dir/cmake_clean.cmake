file(REMOVE_RECURSE
  "CMakeFiles/mcond_autograd.dir/ops.cc.o"
  "CMakeFiles/mcond_autograd.dir/ops.cc.o.d"
  "CMakeFiles/mcond_autograd.dir/optimizer.cc.o"
  "CMakeFiles/mcond_autograd.dir/optimizer.cc.o.d"
  "CMakeFiles/mcond_autograd.dir/variable.cc.o"
  "CMakeFiles/mcond_autograd.dir/variable.cc.o.d"
  "libmcond_autograd.a"
  "libmcond_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
