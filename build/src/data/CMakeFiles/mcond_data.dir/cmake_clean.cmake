file(REMOVE_RECURSE
  "CMakeFiles/mcond_data.dir/datasets.cc.o"
  "CMakeFiles/mcond_data.dir/datasets.cc.o.d"
  "CMakeFiles/mcond_data.dir/synthetic.cc.o"
  "CMakeFiles/mcond_data.dir/synthetic.cc.o.d"
  "libmcond_data.a"
  "libmcond_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
