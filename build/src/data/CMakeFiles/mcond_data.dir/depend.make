# Empty dependencies file for mcond_data.
# This may be replaced when dependencies are built.
