file(REMOVE_RECURSE
  "libmcond_data.a"
)
