file(REMOVE_RECURSE
  "CMakeFiles/mcond_graph.dir/compose.cc.o"
  "CMakeFiles/mcond_graph.dir/compose.cc.o.d"
  "CMakeFiles/mcond_graph.dir/graph.cc.o"
  "CMakeFiles/mcond_graph.dir/graph.cc.o.d"
  "CMakeFiles/mcond_graph.dir/inductive.cc.o"
  "CMakeFiles/mcond_graph.dir/inductive.cc.o.d"
  "CMakeFiles/mcond_graph.dir/sampling.cc.o"
  "CMakeFiles/mcond_graph.dir/sampling.cc.o.d"
  "libmcond_graph.a"
  "libmcond_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
