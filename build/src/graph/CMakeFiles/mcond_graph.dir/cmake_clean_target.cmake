file(REMOVE_RECURSE
  "libmcond_graph.a"
)
