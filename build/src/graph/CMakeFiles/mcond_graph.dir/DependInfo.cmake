
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/compose.cc" "src/graph/CMakeFiles/mcond_graph.dir/compose.cc.o" "gcc" "src/graph/CMakeFiles/mcond_graph.dir/compose.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/mcond_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/mcond_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/inductive.cc" "src/graph/CMakeFiles/mcond_graph.dir/inductive.cc.o" "gcc" "src/graph/CMakeFiles/mcond_graph.dir/inductive.cc.o.d"
  "/root/repo/src/graph/sampling.cc" "src/graph/CMakeFiles/mcond_graph.dir/sampling.cc.o" "gcc" "src/graph/CMakeFiles/mcond_graph.dir/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcond_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
