# Empty dependencies file for mcond_graph.
# This may be replaced when dependencies are built.
