file(REMOVE_RECURSE
  "libmcond_vng.a"
)
