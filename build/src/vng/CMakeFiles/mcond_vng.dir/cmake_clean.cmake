file(REMOVE_RECURSE
  "CMakeFiles/mcond_vng.dir/vng.cc.o"
  "CMakeFiles/mcond_vng.dir/vng.cc.o.d"
  "libmcond_vng.a"
  "libmcond_vng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_vng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
