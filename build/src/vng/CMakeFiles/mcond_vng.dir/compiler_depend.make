# Empty compiler generated dependencies file for mcond_vng.
# This may be replaced when dependencies are built.
