# Empty dependencies file for mcond_propagation.
# This may be replaced when dependencies are built.
