file(REMOVE_RECURSE
  "CMakeFiles/mcond_propagation.dir/correct_and_smooth.cc.o"
  "CMakeFiles/mcond_propagation.dir/correct_and_smooth.cc.o.d"
  "CMakeFiles/mcond_propagation.dir/error_propagation.cc.o"
  "CMakeFiles/mcond_propagation.dir/error_propagation.cc.o.d"
  "CMakeFiles/mcond_propagation.dir/label_propagation.cc.o"
  "CMakeFiles/mcond_propagation.dir/label_propagation.cc.o.d"
  "libmcond_propagation.a"
  "libmcond_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
