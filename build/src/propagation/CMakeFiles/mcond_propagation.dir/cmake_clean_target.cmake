file(REMOVE_RECURSE
  "libmcond_propagation.a"
)
