file(REMOVE_RECURSE
  "CMakeFiles/mcond_eval.dir/batching.cc.o"
  "CMakeFiles/mcond_eval.dir/batching.cc.o.d"
  "CMakeFiles/mcond_eval.dir/experiment.cc.o"
  "CMakeFiles/mcond_eval.dir/experiment.cc.o.d"
  "CMakeFiles/mcond_eval.dir/inference.cc.o"
  "CMakeFiles/mcond_eval.dir/inference.cc.o.d"
  "CMakeFiles/mcond_eval.dir/serving_cache.cc.o"
  "CMakeFiles/mcond_eval.dir/serving_cache.cc.o.d"
  "libmcond_eval.a"
  "libmcond_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
