file(REMOVE_RECURSE
  "libmcond_eval.a"
)
