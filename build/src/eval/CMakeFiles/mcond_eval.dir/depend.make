# Empty dependencies file for mcond_eval.
# This may be replaced when dependencies are built.
