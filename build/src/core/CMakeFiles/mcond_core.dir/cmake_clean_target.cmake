file(REMOVE_RECURSE
  "libmcond_core.a"
)
