# Empty dependencies file for mcond_core.
# This may be replaced when dependencies are built.
