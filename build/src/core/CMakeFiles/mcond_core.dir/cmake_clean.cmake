file(REMOVE_RECURSE
  "CMakeFiles/mcond_core.dir/csr_matrix.cc.o"
  "CMakeFiles/mcond_core.dir/csr_matrix.cc.o.d"
  "CMakeFiles/mcond_core.dir/rng.cc.o"
  "CMakeFiles/mcond_core.dir/rng.cc.o.d"
  "CMakeFiles/mcond_core.dir/serialize.cc.o"
  "CMakeFiles/mcond_core.dir/serialize.cc.o.d"
  "CMakeFiles/mcond_core.dir/status.cc.o"
  "CMakeFiles/mcond_core.dir/status.cc.o.d"
  "CMakeFiles/mcond_core.dir/tensor.cc.o"
  "CMakeFiles/mcond_core.dir/tensor.cc.o.d"
  "CMakeFiles/mcond_core.dir/tensor_ops.cc.o"
  "CMakeFiles/mcond_core.dir/tensor_ops.cc.o.d"
  "libmcond_core.a"
  "libmcond_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
