file(REMOVE_RECURSE
  "libmcond_coreset.a"
)
