file(REMOVE_RECURSE
  "CMakeFiles/mcond_coreset.dir/coreset.cc.o"
  "CMakeFiles/mcond_coreset.dir/coreset.cc.o.d"
  "libmcond_coreset.a"
  "libmcond_coreset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_coreset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
