# Empty compiler generated dependencies file for mcond_coreset.
# This may be replaced when dependencies are built.
