# Empty dependencies file for mcond_condense.
# This may be replaced when dependencies are built.
