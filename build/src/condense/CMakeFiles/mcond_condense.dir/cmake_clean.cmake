file(REMOVE_RECURSE
  "CMakeFiles/mcond_condense.dir/adjacency_generator.cc.o"
  "CMakeFiles/mcond_condense.dir/adjacency_generator.cc.o.d"
  "CMakeFiles/mcond_condense.dir/artifact_io.cc.o"
  "CMakeFiles/mcond_condense.dir/artifact_io.cc.o.d"
  "CMakeFiles/mcond_condense.dir/class_distribution.cc.o"
  "CMakeFiles/mcond_condense.dir/class_distribution.cc.o.d"
  "CMakeFiles/mcond_condense.dir/dense_ops.cc.o"
  "CMakeFiles/mcond_condense.dir/dense_ops.cc.o.d"
  "CMakeFiles/mcond_condense.dir/gcond.cc.o"
  "CMakeFiles/mcond_condense.dir/gcond.cc.o.d"
  "CMakeFiles/mcond_condense.dir/gradient_matching.cc.o"
  "CMakeFiles/mcond_condense.dir/gradient_matching.cc.o.d"
  "CMakeFiles/mcond_condense.dir/mapping.cc.o"
  "CMakeFiles/mcond_condense.dir/mapping.cc.o.d"
  "CMakeFiles/mcond_condense.dir/mcond.cc.o"
  "CMakeFiles/mcond_condense.dir/mcond.cc.o.d"
  "CMakeFiles/mcond_condense.dir/relay_sgc.cc.o"
  "CMakeFiles/mcond_condense.dir/relay_sgc.cc.o.d"
  "libmcond_condense.a"
  "libmcond_condense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_condense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
