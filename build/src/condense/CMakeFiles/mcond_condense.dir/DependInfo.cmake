
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/condense/adjacency_generator.cc" "src/condense/CMakeFiles/mcond_condense.dir/adjacency_generator.cc.o" "gcc" "src/condense/CMakeFiles/mcond_condense.dir/adjacency_generator.cc.o.d"
  "/root/repo/src/condense/artifact_io.cc" "src/condense/CMakeFiles/mcond_condense.dir/artifact_io.cc.o" "gcc" "src/condense/CMakeFiles/mcond_condense.dir/artifact_io.cc.o.d"
  "/root/repo/src/condense/class_distribution.cc" "src/condense/CMakeFiles/mcond_condense.dir/class_distribution.cc.o" "gcc" "src/condense/CMakeFiles/mcond_condense.dir/class_distribution.cc.o.d"
  "/root/repo/src/condense/dense_ops.cc" "src/condense/CMakeFiles/mcond_condense.dir/dense_ops.cc.o" "gcc" "src/condense/CMakeFiles/mcond_condense.dir/dense_ops.cc.o.d"
  "/root/repo/src/condense/gcond.cc" "src/condense/CMakeFiles/mcond_condense.dir/gcond.cc.o" "gcc" "src/condense/CMakeFiles/mcond_condense.dir/gcond.cc.o.d"
  "/root/repo/src/condense/gradient_matching.cc" "src/condense/CMakeFiles/mcond_condense.dir/gradient_matching.cc.o" "gcc" "src/condense/CMakeFiles/mcond_condense.dir/gradient_matching.cc.o.d"
  "/root/repo/src/condense/mapping.cc" "src/condense/CMakeFiles/mcond_condense.dir/mapping.cc.o" "gcc" "src/condense/CMakeFiles/mcond_condense.dir/mapping.cc.o.d"
  "/root/repo/src/condense/mcond.cc" "src/condense/CMakeFiles/mcond_condense.dir/mcond.cc.o" "gcc" "src/condense/CMakeFiles/mcond_condense.dir/mcond.cc.o.d"
  "/root/repo/src/condense/relay_sgc.cc" "src/condense/CMakeFiles/mcond_condense.dir/relay_sgc.cc.o" "gcc" "src/condense/CMakeFiles/mcond_condense.dir/relay_sgc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/mcond_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mcond_data.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/mcond_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcond_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mcond_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
