file(REMOVE_RECURSE
  "libmcond_condense.a"
)
