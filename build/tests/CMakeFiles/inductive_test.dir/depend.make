# Empty dependencies file for inductive_test.
# This may be replaced when dependencies are built.
