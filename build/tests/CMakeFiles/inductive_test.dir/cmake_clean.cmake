file(REMOVE_RECURSE
  "CMakeFiles/inductive_test.dir/inductive_test.cc.o"
  "CMakeFiles/inductive_test.dir/inductive_test.cc.o.d"
  "inductive_test"
  "inductive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inductive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
