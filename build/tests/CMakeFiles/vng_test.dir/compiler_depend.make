# Empty compiler generated dependencies file for vng_test.
# This may be replaced when dependencies are built.
