file(REMOVE_RECURSE
  "CMakeFiles/vng_test.dir/vng_test.cc.o"
  "CMakeFiles/vng_test.dir/vng_test.cc.o.d"
  "vng_test"
  "vng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
