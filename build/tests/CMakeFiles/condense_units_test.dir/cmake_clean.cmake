file(REMOVE_RECURSE
  "CMakeFiles/condense_units_test.dir/condense_units_test.cc.o"
  "CMakeFiles/condense_units_test.dir/condense_units_test.cc.o.d"
  "condense_units_test"
  "condense_units_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condense_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
