
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/condense_units_test.cc" "tests/CMakeFiles/condense_units_test.dir/condense_units_test.cc.o" "gcc" "tests/CMakeFiles/condense_units_test.dir/condense_units_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/condense/CMakeFiles/mcond_condense.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mcond_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/mcond_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mcond_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcond_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mcond_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
