# Empty compiler generated dependencies file for condense_units_test.
# This may be replaced when dependencies are built.
