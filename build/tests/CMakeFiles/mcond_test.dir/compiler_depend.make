# Empty compiler generated dependencies file for mcond_test.
# This may be replaced when dependencies are built.
