file(REMOVE_RECURSE
  "CMakeFiles/mcond_test.dir/mcond_test.cc.o"
  "CMakeFiles/mcond_test.dir/mcond_test.cc.o.d"
  "mcond_test"
  "mcond_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
