file(REMOVE_RECURSE
  "CMakeFiles/serving_extras_test.dir/serving_extras_test.cc.o"
  "CMakeFiles/serving_extras_test.dir/serving_extras_test.cc.o.d"
  "serving_extras_test"
  "serving_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
