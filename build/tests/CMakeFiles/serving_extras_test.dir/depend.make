# Empty dependencies file for serving_extras_test.
# This may be replaced when dependencies are built.
