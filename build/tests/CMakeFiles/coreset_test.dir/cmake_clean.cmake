file(REMOVE_RECURSE
  "CMakeFiles/coreset_test.dir/coreset_test.cc.o"
  "CMakeFiles/coreset_test.dir/coreset_test.cc.o.d"
  "coreset_test"
  "coreset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
