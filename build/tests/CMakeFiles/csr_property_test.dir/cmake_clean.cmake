file(REMOVE_RECURSE
  "CMakeFiles/csr_property_test.dir/csr_property_test.cc.o"
  "CMakeFiles/csr_property_test.dir/csr_property_test.cc.o.d"
  "csr_property_test"
  "csr_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
