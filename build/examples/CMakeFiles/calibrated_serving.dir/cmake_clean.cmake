file(REMOVE_RECURSE
  "CMakeFiles/calibrated_serving.dir/calibrated_serving.cpp.o"
  "CMakeFiles/calibrated_serving.dir/calibrated_serving.cpp.o.d"
  "calibrated_serving"
  "calibrated_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrated_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
