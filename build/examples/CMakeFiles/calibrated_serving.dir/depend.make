# Empty dependencies file for calibrated_serving.
# This may be replaced when dependencies are built.
