# Empty dependencies file for inductive_serving.
# This may be replaced when dependencies are built.
