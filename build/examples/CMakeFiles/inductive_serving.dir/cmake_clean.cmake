file(REMOVE_RECURSE
  "CMakeFiles/inductive_serving.dir/inductive_serving.cpp.o"
  "CMakeFiles/inductive_serving.dir/inductive_serving.cpp.o.d"
  "inductive_serving"
  "inductive_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inductive_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
