file(REMOVE_RECURSE
  "CMakeFiles/architecture_zoo.dir/architecture_zoo.cpp.o"
  "CMakeFiles/architecture_zoo.dir/architecture_zoo.cpp.o.d"
  "architecture_zoo"
  "architecture_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
