# Empty dependencies file for architecture_zoo.
# This may be replaced when dependencies are built.
