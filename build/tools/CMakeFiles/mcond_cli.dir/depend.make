# Empty dependencies file for mcond_cli.
# This may be replaced when dependencies are built.
