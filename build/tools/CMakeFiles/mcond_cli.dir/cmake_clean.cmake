file(REMOVE_RECURSE
  "CMakeFiles/mcond_cli.dir/mcond_cli.cc.o"
  "CMakeFiles/mcond_cli.dir/mcond_cli.cc.o.d"
  "mcond_cli"
  "mcond_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcond_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
