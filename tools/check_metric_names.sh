#!/usr/bin/env bash
# Enforces the metric naming convention at every registry call site:
#
#   mcond.<area>[.<subarea>].<metric>[_<unit>]
#   e.g. mcond.server.queue_wait_us, mcond.shard.prefetch.stall_us
#
# i.e. three or four dot-separated segments, first one "mcond", the rest
# lowercase [a-z0-9_]. One sanctioned five-segment family exists on top:
# the per-tenant serving metrics mcond.net.tenant.<name>.<metric>, where
# <name> is a registry tenant (ModelRegistry validates it to [a-z0-9_]
# precisely so these embed cleanly; the Prometheus exporter folds the
# tenant segment into a tenant="<name>" label). Call sites build those
# dynamically and carry the usual `// metric-name:` annotation.
#
# Scans every GetCounter / GetGauge / GetHistogram /
# GetSeries call in src/, tests/, bench/, tools/ and examples/:
#
#   - A call with a complete string literal is validated directly.
#   - A call built from a runtime expression (concatenation, variable)
#     must carry a `// metric-name: mcond.<area>.<tmpl>` annotation on the
#     same line or one of the two lines above it; the template is
#     validated with <placeholders> substituted by "0"
#     (e.g. mcond.server.worker<i>_busy_ratio).
#
# src/obs/metrics.{h,cc} are excluded: they declare/implement the
# registry itself, not call sites.
#
# Usage: check_metric_names.sh [repo_root]   (also run as a ctest entry)

set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"

files=$(find "$root/src" "$root/tests" "$root/bench" "$root/tools" \
             "$root/examples" -type f \( -name '*.cc' -o -name '*.h' \) \
             2>/dev/null | grep -Ev 'src/obs/metrics\.(h|cc)$')

# shellcheck disable=SC2086
errors=$(awk '
function valid(name) {
  if (name ~ /^mcond\.net\.tenant\.[a-z0-9_]+\.[a-z0-9_]+$/) return 1
  return name ~ /^mcond\.[a-z0-9_]+(\.[a-z0-9_]+)?\.[a-z0-9_]+$/
}
FNR == 1 { prev1 = ""; prev2 = "" }
/Get(Counter|Gauge|Histogram|Series)\(/ {
  line = $0
  # Declarations/forwarders of the accessors themselves are not call sites.
  if (line ~ /Get(Counter|Gauge|Histogram|Series)\(const[ ]/) {
    prev2 = prev1; prev1 = $0; next
  }
  if (match(line, /Get(Counter|Gauge|Histogram|Series)\("[^"]+"\)/)) {
    lit = substr(line, RSTART, RLENGTH)
    sub(/^[^"]*"/, "", lit); sub(/"\)$/, "", lit)
    if (!valid(lit)) {
      printf "%s:%d: metric name \"%s\" violates mcond.<area>.<metric>\n", \
             FILENAME, FNR, lit
    }
  } else {
    # Dynamic name: require a nearby metric-name annotation.
    ctx = prev2 "\n" prev1 "\n" line
    if (match(ctx, /\/\/ metric-name: [^ \n]+/)) {
      tmpl = substr(ctx, RSTART, RLENGTH)
      sub(/^\/\/ metric-name: /, "", tmpl)
      gsub(/<[a-z0-9_]+>/, "0", tmpl)
      if (!valid(tmpl)) {
        printf "%s:%d: metric-name template violates mcond.<area>.<metric>\n", \
               FILENAME, FNR
      }
    } else {
      printf "%s:%d: dynamic metric name without a // metric-name: annotation\n", \
             FILENAME, FNR
    }
  }
}
{ prev2 = prev1; prev1 = $0 }
' $files)

if [ -n "$errors" ]; then
  echo "error: metric naming violations (convention: mcond.<area>[.<subarea>].<metric>[_<unit>],"
  echo "see docs/observability.md):"
  echo "$errors"
  exit 1
fi
echo "OK: all metric names follow mcond.<area>[.<subarea>].<metric>"
exit 0
