#!/usr/bin/env bash
# Fails if library code under src/ uses std::cout / std::cerr directly.
# Diagnostics must go through the observability layer (src/obs/log.h) so
# they are leveled, filterable, and sink-pluggable. Allowed exceptions:
#   - src/eval/experiment.cc   (result-table printing is its contract)
#   - src/core/logging.h       (MCOND_CHECK's fatal path writes to stderr)
#
# Usage: check_no_iostream.sh [repo_root]   (also run as a ctest entry)

set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
allowed='src/eval/experiment\.cc|src/core/logging\.h'

matches=$(grep -rn --include='*.cc' --include='*.h' -E 'std::(cout|cerr)' \
  "$root/src" | grep -Ev "($allowed)")

if [ -n "$matches" ]; then
  echo "error: direct std::cout/std::cerr in src/ — use MCOND_LOG from" \
       "obs/log.h instead (see docs/observability.md):"
  echo "$matches"
  exit 1
fi
echo "OK: no direct iostream diagnostics in src/"
exit 0
