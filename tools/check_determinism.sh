#!/usr/bin/env bash
# Proves the parallel substrate's determinism contract end to end: runs the
# kernel smoke workload (bench_kernels --smoke) single-threaded and at a
# deliberately oversubscribed width, then diffs the per-kernel bit-level
# checksums. Any float that differs by even one ULP fails the diff.
#
# Usage: check_determinism.sh <path-to-bench_kernels> [wide_thread_count]
# Registered as a ctest (see bench/CMakeLists.txt), so `ctest` runs it on
# every build — including the single-core CI case, where the wide run still
# exercises the pool's worker threads via preemption.
set -euo pipefail

BENCH="${1:?usage: check_determinism.sh <bench_kernels binary> [threads]}"
WIDE="${2:-8}"

narrow=$(MCOND_NUM_THREADS=1 "$BENCH" --smoke | grep -v '^threads ')
wide=$(MCOND_NUM_THREADS="$WIDE" "$BENCH" --smoke | grep -v '^threads ')

if [[ "$narrow" != "$wide" ]]; then
  echo "DETERMINISM FAILURE: kernel checksums differ between 1 and $WIDE threads" >&2
  diff <(echo "$narrow") <(echo "$wide") >&2 || true
  exit 1
fi

echo "OK: kernel checksums identical at 1 and $WIDE threads"
echo "$narrow"
