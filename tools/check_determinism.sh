#!/usr/bin/env bash
# Proves the parallel substrate's determinism contract end to end: runs the
# kernel smoke workload (bench_kernels --smoke) single-threaded and at a
# deliberately oversubscribed width, then diffs the per-kernel bit-level
# checksums. Any float that differs by even one ULP fails the diff.
#
# When given a bench_serving_throughput binary it additionally proves the
# serving contracts: its --smoke checksums must match between the two
# widths, AND within each run every logits_session* digest must equal its
# logits_per_request* counterpart — the session path is bit-identical to
# the per-request path, not just self-consistent (docs/performance.md).
#
# When given a bench_condense_scale binary it also proves the out-of-core
# contract: its --smoke digests must match between the two widths AND
# between prefetch off (MCOND_PREFETCH_SEGMENTS=0) and on (=3) — the
# background segment prefetcher changes timing only, never bits. Within
# each run every streamed_<tag> digest must equal its resident_<tag>
# counterpart — the segment-store kernels (SpMM, normalization, propagation)
# and a full condense round are bit-identical to the resident path at every
# thread count, segment partition and prefetch depth (docs/performance.md).
#
# When given a bench_net_throughput binary it also proves the network
# loopback contract: its --smoke digests must match between the two widths,
# AND within each run every net_<tag> digest must equal its inproc_<tag>
# counterpart — logits served over the wire protocol (loopback TCP, two
# tenants concurrently from one registry, server replicas K=1 and K=8) are
# bit-identical to in-process ConcurrentServer calls on the same tenants
# (docs/serving.md).
#
# Usage: check_determinism.sh <path-to-bench_kernels> [wide_thread_count]
#                             [path-to-bench_serving_throughput]
#                             [path-to-bench_condense_scale]
#                             [path-to-bench_net_throughput]
# Registered as a ctest (see bench/CMakeLists.txt), so `ctest` runs it on
# every build — including the single-core CI case, where the wide run still
# exercises the pool's worker threads via preemption.
set -euo pipefail

BENCH="${1:?usage: check_determinism.sh <bench_kernels binary> [threads] [bench_serving_throughput binary] [bench_condense_scale binary]}"
WIDE="${2:-8}"
SERVING="${3:-}"
CONDENSE="${4:-}"
NET="${5:-}"

narrow=$(MCOND_NUM_THREADS=1 "$BENCH" --smoke | grep -v '^threads ')
wide=$(MCOND_NUM_THREADS="$WIDE" "$BENCH" --smoke | grep -v '^threads ')

if [[ "$narrow" != "$wide" ]]; then
  echo "DETERMINISM FAILURE: kernel checksums differ between 1 and $WIDE threads" >&2
  diff <(echo "$narrow") <(echo "$wide") >&2 || true
  exit 1
fi

echo "OK: kernel checksums identical at 1 and $WIDE threads"
echo "$narrow"

if [[ -n "$SERVING" ]]; then
  s_narrow=$(MCOND_NUM_THREADS=1 "$SERVING" --smoke | grep -v '^threads ')
  s_wide=$(MCOND_NUM_THREADS="$WIDE" "$SERVING" --smoke | grep -v '^threads ')

  if [[ "$s_narrow" != "$s_wide" ]]; then
    echo "DETERMINISM FAILURE: serving checksums differ between 1 and $WIDE threads" >&2
    diff <(echo "$s_narrow") <(echo "$s_wide") >&2 || true
    exit 1
  fi

  # Pair check: logits_session_<tag> must equal logits_per_request_<tag>.
  while read -r name digest; do
    case "$name" in
      logits_per_request*)
        tag="${name#logits_per_request}"
        session=$(echo "$s_narrow" | awk -v n="logits_session$tag" \
                  '$1 == n {print $2}')
        if [[ -z "$session" ]]; then
          echo "DETERMINISM FAILURE: no logits_session$tag line to pair with $name" >&2
          exit 1
        fi
        if [[ "$session" != "$digest" ]]; then
          echo "DETERMINISM FAILURE: session logits differ from per-request for '$tag'" >&2
          echo "  per_request $digest" >&2
          echo "  session     $session" >&2
          exit 1
        fi
        ;;
    esac
  done <<< "$s_narrow"

  # Concurrent check: the order-invariant digest sums from the replica-pool
  # server must equal the expected (clients x solo) sum at K=1 AND at the
  # oversubscribed, micro-batched K=8 — concurrency and coalescing change
  # no bits.
  while read -r name digest; do
    case "$name" in
      logits_concurrent_expected*)
        tag="${name#logits_concurrent_expected}"
        for k in k1 k8; do
          got=$(echo "$s_narrow" | awk -v n="logits_concurrent_${k}$tag" \
                '$1 == n {print $2}')
          if [[ -z "$got" ]]; then
            echo "DETERMINISM FAILURE: no logits_concurrent_${k}$tag line to pair with $name" >&2
            exit 1
          fi
          if [[ "$got" != "$digest" ]]; then
            echo "DETERMINISM FAILURE: concurrent ($k) logits differ from solo for '$tag'" >&2
            echo "  expected   $digest" >&2
            echo "  concurrent $got" >&2
            exit 1
          fi
        done
        ;;
    esac
  done <<< "$s_narrow"

  echo "OK: serving checksums identical at 1 and $WIDE threads, session == per-request, concurrent == solo at K=1 and K=8"
  echo "$s_narrow"
fi

if [[ -n "$CONDENSE" ]]; then
  # Four combos: {1, WIDE} threads x prefetch {off, on}. The `threads` and
  # `prefetch` echo lines differ by construction; every digest line must not.
  c_narrow=$(MCOND_NUM_THREADS=1 MCOND_PREFETCH_SEGMENTS=0 "$CONDENSE" --smoke \
             | grep -Ev '^(threads|prefetch) ')
  c_wide=$(MCOND_NUM_THREADS="$WIDE" MCOND_PREFETCH_SEGMENTS=0 "$CONDENSE" --smoke \
           | grep -Ev '^(threads|prefetch) ')
  c_narrow_pf=$(MCOND_NUM_THREADS=1 MCOND_PREFETCH_SEGMENTS=3 "$CONDENSE" --smoke \
                | grep -Ev '^(threads|prefetch) ')
  c_wide_pf=$(MCOND_NUM_THREADS="$WIDE" MCOND_PREFETCH_SEGMENTS=3 "$CONDENSE" --smoke \
              | grep -Ev '^(threads|prefetch) ')

  if [[ "$c_narrow" != "$c_wide" ]]; then
    echo "DETERMINISM FAILURE: out-of-core checksums differ between 1 and $WIDE threads" >&2
    diff <(echo "$c_narrow") <(echo "$c_wide") >&2 || true
    exit 1
  fi
  if [[ "$c_narrow" != "$c_narrow_pf" ]]; then
    echo "DETERMINISM FAILURE: out-of-core checksums differ between prefetch off and on (1 thread)" >&2
    diff <(echo "$c_narrow") <(echo "$c_narrow_pf") >&2 || true
    exit 1
  fi
  if [[ "$c_narrow" != "$c_wide_pf" ]]; then
    echo "DETERMINISM FAILURE: out-of-core checksums differ between prefetch off and on ($WIDE threads)" >&2
    diff <(echo "$c_narrow") <(echo "$c_wide_pf") >&2 || true
    exit 1
  fi

  # Pair check: every streamed_<tag> must equal resident_<tag> — the
  # segment-store path changes no bits relative to the resident path.
  paired=0
  while read -r name digest; do
    case "$name" in
      resident_*)
        tag="${name#resident_}"
        streamed=$(echo "$c_narrow" | awk -v n="streamed_$tag" \
                   '$1 == n {print $2}')
        if [[ -z "$streamed" ]]; then
          echo "DETERMINISM FAILURE: no streamed_$tag line to pair with $name" >&2
          exit 1
        fi
        if [[ "$streamed" != "$digest" ]]; then
          echo "DETERMINISM FAILURE: streamed '$tag' differs from resident" >&2
          echo "  resident $digest" >&2
          echo "  streamed $streamed" >&2
          exit 1
        fi
        paired=$((paired + 1))
        ;;
    esac
  done <<< "$c_narrow"
  if [[ "$paired" -eq 0 ]]; then
    echo "DETERMINISM FAILURE: no resident_* digests in bench_condense_scale --smoke output" >&2
    exit 1
  fi

  echo "OK: out-of-core checksums identical at 1 and $WIDE threads, prefetch off and on, streamed == resident for $paired kernels"
  echo "$c_narrow"
fi

if [[ -n "$NET" ]]; then
  n_narrow=$(MCOND_NUM_THREADS=1 "$NET" --smoke | grep -v '^threads ')
  n_wide=$(MCOND_NUM_THREADS="$WIDE" "$NET" --smoke | grep -v '^threads ')

  if [[ "$n_narrow" != "$n_wide" ]]; then
    echo "DETERMINISM FAILURE: network serving checksums differ between 1 and $WIDE threads" >&2
    diff <(echo "$n_narrow") <(echo "$n_wide") >&2 || true
    exit 1
  fi

  # Pair check: every net_<tag> must equal inproc_<tag> — the wire protocol
  # transfers logit bits verbatim; loopback == in-process for every tenant,
  # replica count and batch mode.
  paired=0
  while read -r name digest; do
    case "$name" in
      inproc_*)
        tag="${name#inproc_}"
        got=$(echo "$n_narrow" | awk -v n="net_$tag" '$1 == n {print $2}')
        if [[ -z "$got" ]]; then
          echo "DETERMINISM FAILURE: no net_$tag line to pair with inproc_$tag" >&2
          exit 1
        fi
        if [[ "$got" != "$digest" ]]; then
          echo "DETERMINISM FAILURE: loopback logits differ from in-process for '$tag'" >&2
          echo "  inproc $digest" >&2
          echo "  net    $got" >&2
          exit 1
        fi
        paired=$((paired + 1))
        ;;
    esac
  done <<< "$n_narrow"
  if [[ "$paired" -eq 0 ]]; then
    echo "DETERMINISM FAILURE: no inproc_* digests in bench_net_throughput --smoke output" >&2
    exit 1
  fi

  echo "OK: network loopback logits bit-identical to in-process for $paired tenant/replica/mode combos at 1 and $WIDE threads"
  echo "$n_narrow"
fi
