// Command-line front end for the MCond workflow:
//
//   mcond_cli datasets
//       List the built-in simulated datasets.
//   mcond_cli condense --dataset reddit-sim --ratio 0.02 --out S.bin
//       Run Algorithm 1 and write the condensed artifact.
//       --mem_budget_mb M runs the out-of-core path: the training graph is
//       spilled to segment stores next to --out and condensation streams it
//       under an M-MB mapped-segment budget, with results bit-identical to
//       the resident path (docs/performance.md "Out-of-core condensation").
//   mcond_cli inspect S.bin
//       Print artifact statistics.
//   mcond_cli serve --dataset reddit-sim --artifact S.bin [--node-batch]
//             [--serve_mode per_request|session]
//             [--serve_concurrency K] [--serve_queue N]
//       Train SGC on the artifact and serve the dataset's test batch,
//       reporting accuracy / latency / memory vs the original graph.
//       --serve_mode session routes both paths through the persistent
//       ServingSession (bit-identical results, lower steady-state latency).
//       --serve_concurrency K additionally streams the test split through
//       a ConcurrentServer of K session replicas behind a bounded request
//       queue of --serve_queue N slots (default 32), verifying the
//       concurrent logits bit-match a solo session and reporting the
//       aggregate throughput and pool memory (docs/performance.md).
//   mcond_cli serve --listen <port> --registry <dir> [--bind ADDR]
//             [--serve_concurrency K] [--serve_queue N] [--quota_rps R]
//             [--train_epochs E] [--duration_s S]
//       Network mode (docs/serving.md): load every artifact in <dir> as a
//       tenant of a ModelRegistry (tenant name = file stem), train each
//       with the default SGC factory, and serve the mcond wire protocol on
//       --bind:--listen (port 0 picks an ephemeral port, printed at
//       startup). Runs until SIGINT/SIGTERM, or for --duration_s seconds.
//       --quota_rps adds a per-tenant token-bucket admission quota.
//
// All flags accept both "--key value" and "--key=value" spellings
// (tools/check_cli_flags.sh holds this invariant across subcommands).
//
// Observability flags, accepted by every command (docs/observability.md):
//   --log_level debug|info|warn|error|off   (default: MCOND_LOG_LEVEL)
//   --trace_out trace.json    enable tracing, write Chrome trace JSON
//   --metrics_out metrics.json  write a metrics-registry snapshot
//   --metrics_prom_out metrics.prom  write a Prometheus text snapshot
//   --metrics_export_path m.jsonl    live exporter: append one JSONL
//                                    time-series line per interval
//   --metrics_export_prom m.prom     live exporter: rewrite a Prometheus
//                                    text file per interval
//   --metrics_export_interval_ms N   exporter tick period (default 1000)
//
// Performance flags (docs/performance.md):
//   --threads N    kernel thread-pool width (default: MCOND_NUM_THREADS,
//                  else hardware concurrency); results are identical at
//                  every setting
//   --simd auto|avx2|scalar   kernel SIMD tier (default: MCOND_SIMD, else
//                  auto). avx2 downgrades to scalar with a warning when the
//                  host or build lacks AVX2+FMA. The selected tier is
//                  reported at startup (INFO log + mcond.simd.tier gauge,
//                  visible in --metrics_out snapshots).
//   --prefetch_segments N   out-of-core segment prefetch depth (default:
//                  MCOND_PREFETCH_SEGMENTS, else 2; 0 disables). Streamed
//                  kernels overlap the next segment's mmap + fault-in with
//                  compute; results are bit-identical at every depth. The
//                  depth is recorded in the mcond.shard.prefetch.depth
//                  gauge (visible in --metrics_out snapshots).
//
// Exit code 0 on success; errors print a Status message to stderr.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <thread>

#include "condense/artifact_io.h"
#include "condense/mcond.h"
#include "core/parallel.h"
#include "core/segment_prefetcher.h"
#include "core/simd.h"
#include "data/datasets.h"
#include "eval/batching.h"
#include "graph/sharded_ops.h"
#include "eval/inference.h"
#include "net/model_registry.h"
#include "net/net_server.h"
#include "nn/trainer.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "serve/concurrent_server.h"
#include "serve/serving_session.h"

namespace mcond {
namespace {

/// Minimal --key value flag parser; positional args collected in order.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      const size_t eq = key.find('=');
      if (eq != std::string::npos) {
        // --key=value form.
        args.flags[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "1";  // Boolean flag.
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

std::string FlagOr(const Args& args, const std::string& key,
                   const std::string& fallback) {
  const auto it = args.flags.find(key);
  return it == args.flags.end() ? fallback : it->second;
}

int CmdDatasets() {
  std::cout << "name         nodes   classes  feat  avg-deg  ratios\n";
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    std::cout << spec.name;
    for (size_t i = spec.name.size(); i < 13; ++i) std::cout << ' ';
    std::cout << spec.sbm.num_nodes << "    " << spec.sbm.num_classes
              << "        " << spec.sbm.feature_dim << "    "
              << spec.sbm.avg_degree << "     ";
    for (double r : spec.reduction_ratios) std::cout << r << " ";
    std::cout << "\n";
  }
  return 0;
}

int CmdCondense(const Args& args) {
  const std::string dataset = FlagOr(args, "dataset", "tiny-sim");
  const double ratio = std::stod(FlagOr(args, "ratio", "0.05"));
  const uint64_t seed = std::stoull(FlagOr(args, "seed", "1"));
  const std::string out = FlagOr(args, "out", "condensed.bin");
  StatusOr<DatasetSpec> spec = FindDatasetSpec(dataset);
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }
  DatasetSpec s = spec.value();
  if (args.flags.count("epochs") > 0) {
    s.condensation_epochs = std::stoll(args.flags.at("epochs"));
  }
  InductiveDataset data = MakeDataset(s, seed);
  const int64_t n_syn = SyntheticNodeCount(data.train_graph, ratio);
  std::cout << "condensing " << data.train_graph.NumNodes() << " nodes -> "
            << n_syn << " synthetic nodes (" << s.condensation_epochs
            << " epochs)...\n";
  MCondConfig config;
  config.outer_rounds =
      std::max<int64_t>(1, s.condensation_epochs / 15);
  config.verbose = args.flags.count("verbose") > 0;
  const int64_t mem_budget_mb =
      std::stoll(FlagOr(args, "mem_budget_mb", "0"));
  MCondResult result;
  if (mem_budget_mb > 0) {
    const std::string shard_dir = out + ".shards";
    StatusOr<ShardedGraph> sharded = ShardGraph(
        data.train_graph, shard_dir, ShardOptions(),
        mem_budget_mb * (int64_t{1} << 20));
    if (!sharded.ok()) {
      std::cerr << sharded.status().ToString() << "\n";
      return 1;
    }
    std::cout << "out-of-core: "
              << sharded.value().adjacency->NumSegments() << "+"
              << sharded.value().normalized->NumSegments()
              << " segments in " << shard_dir << " under " << mem_budget_mb
              << " MB budget\n";
    result = RunMCondSharded(sharded.value(), data.val, n_syn, config, seed);
    std::cout << "peak RSS " << obs::RecordRssMetrics() / (1 << 20)
              << " MB\n";
  } else {
    result = RunMCond(data.train_graph, data.val, n_syn, config, seed);
  }
  Status status = SaveCondensedGraph(out, result.condensed);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << out << " ("
            << result.condensed.StorageBytes() / 1024 << " KB; "
            << result.condensed.graph.NumEdges() << " edges, mapping nnz "
            << result.condensed.mapping.Nnz() << ")\n";
  return 0;
}

int CmdInspect(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: mcond_cli inspect <artifact>\n";
    return 1;
  }
  StatusOr<CondensedGraph> loaded = LoadCondensedGraph(args.positional[0]);
  if (!loaded.ok()) {
    std::cerr << loaded.status().ToString() << "\n";
    return 1;
  }
  const CondensedGraph& cg = loaded.value();
  std::cout << "synthetic nodes:   " << cg.graph.NumNodes() << "\n";
  std::cout << "synthetic edges:   " << cg.graph.NumEdges() << "\n";
  std::cout << "feature dim:       " << cg.graph.FeatureDim() << "\n";
  std::cout << "classes:           " << cg.graph.num_classes() << "\n";
  std::cout << "mapping:           " << cg.mapping.rows() << " x "
            << cg.mapping.cols() << ", nnz " << cg.mapping.Nnz() << "\n";
  std::cout << "storage:           " << cg.StorageBytes() / 1024 << " KB\n";
  const std::vector<int64_t> counts = cg.graph.ClassCounts();
  std::cout << "class counts:      ";
  for (int64_t c : counts) std::cout << c << " ";
  std::cout << "\n";
  return 0;
}

std::atomic<bool> g_interrupted{false};

void HandleStopSignal(int /*sig*/) { g_interrupted.store(true); }

/// `serve --listen P --registry DIR`: the long-running multi-tenant
/// network front-end over a directory of condensed artifacts.
int CmdServeNet(const Args& args) {
  const std::string registry_dir = FlagOr(args, "registry", "");
  if (registry_dir.empty()) {
    std::cerr << "serve --listen requires --registry <dir>\n";
    return 1;
  }
  int port = 0;
  try {
    port = std::stoi(FlagOr(args, "listen", "0"));
  } catch (...) {
    port = -1;
  }
  if (port < 0 || port > 65535) {
    std::cerr << "bad --listen port\n";
    return 1;
  }
  net::TenantConfig tenant_cfg;
  tenant_cfg.num_replicas = std::stoi(FlagOr(args, "serve_concurrency", "1"));
  tenant_cfg.queue_capacity = std::stoi(FlagOr(args, "serve_queue", "64"));
  tenant_cfg.quota_rps = std::stod(FlagOr(args, "quota_rps", "0"));
  const int64_t train_epochs =
      std::stoll(FlagOr(args, "train_epochs", "300"));
  const uint64_t seed = std::stoull(FlagOr(args, "seed", "1"));

  net::ModelRegistry registry(
      net::ModelRegistry::DefaultSgcFactory(train_epochs, seed));
  StatusOr<int> added = registry.LoadDirectory(registry_dir, tenant_cfg);
  if (!added.ok()) {
    std::cerr << added.status().ToString() << "\n";
    return 1;
  }
  net::NetServerOptions options;
  options.bind_address = FlagOr(args, "bind", "127.0.0.1");
  options.port = port;
  net::NetServer server(registry, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }
  // The bench harness and smoke scripts scrape this line for the ephemeral
  // port, so it goes to stdout unbuffered.
  std::cout << "serving " << added.value() << " tenant(s) [";
  bool first = true;
  for (const std::string& name : registry.TenantNames()) {
    std::cout << (first ? "" : " ") << name;
    first = false;
  }
  std::cout << "] on " << options.bind_address << ":" << server.port()
            << std::endl;

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  const double duration_s = std::stod(FlagOr(args, "duration_s", "0"));
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(duration_s * 1e3));
  while (!g_interrupted.load()) {
    if (duration_s > 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  std::cout << "net server stopped\n";
  return 0;
}

int CmdServe(const Args& args) {
  if (args.flags.count("listen") > 0) return CmdServeNet(args);
  const std::string dataset = FlagOr(args, "dataset", "tiny-sim");
  const std::string artifact = FlagOr(args, "artifact", "condensed.bin");
  const uint64_t seed = std::stoull(FlagOr(args, "seed", "1"));
  const bool graph_batch = args.flags.count("node-batch") == 0;
  const std::string mode_text = FlagOr(args, "serve_mode", "per_request");
  ServeMode mode;
  if (mode_text == "per_request") {
    mode = ServeMode::kPerRequest;
  } else if (mode_text == "session") {
    mode = ServeMode::kSession;
  } else {
    std::cerr << "unknown --serve_mode '" << mode_text
              << "' (expected per_request or session)\n";
    return 1;
  }
  StatusOr<CondensedGraph> loaded = LoadCondensedGraph(artifact);
  if (!loaded.ok()) {
    std::cerr << loaded.status().ToString() << "\n";
    return 1;
  }
  const CondensedGraph& cg = loaded.value();
  InductiveDataset data = MakeDatasetByName(dataset, seed);
  if (cg.mapping.rows() != data.train_graph.NumNodes()) {
    std::cerr << "artifact was condensed from a different graph (mapping "
                 "has "
              << cg.mapping.rows() << " rows, dataset has "
              << data.train_graph.NumNodes() << " train nodes)\n";
    return 1;
  }
  Rng rng(seed + 1);
  GnnConfig gc;
  std::unique_ptr<GnnModel> model =
      MakeGnn(GnnArch::kSgc, cg.graph.FeatureDim(), cg.graph.num_classes(),
              gc, rng);
  GraphOperators syn_ops = GraphOperators::FromGraph(cg.graph);
  std::vector<int64_t> all(cg.graph.NumNodes());
  std::iota(all.begin(), all.end(), 0);
  TrainConfig tc;
  tc.epochs = 300;
  TrainNodeClassifier(*model, syn_ops, cg.graph.features(),
                      cg.graph.labels(), all, tc, rng);
  InferenceResult on_syn =
      ServeOnCondensed(*model, cg, data.test, graph_batch, rng, 3, mode);
  InferenceResult on_orig = ServeOnOriginal(*model, data.train_graph,
                                            data.test, graph_batch, rng, 3,
                                            mode);
  std::cout << (graph_batch ? "graph" : "node") << "-batch serving of "
            << data.test.size() << " inductive nodes (" << mode_text
            << " mode)\n";
  std::cout << "  synthetic: acc " << on_syn.accuracy << ", "
            << on_syn.seconds * 1e3 << " ms (min "
            << on_syn.seconds_min * 1e3 << "), "
            << on_syn.memory_bytes / 1024 << " KB\n";
  std::cout << "  original:  acc " << on_orig.accuracy << ", "
            << on_orig.seconds * 1e3 << " ms (min "
            << on_orig.seconds_min * 1e3 << "), "
            << on_orig.memory_bytes / 1024 << " KB\n";
  std::cout << "  speedup " << on_orig.seconds / on_syn.seconds
            << "x, memory saving "
            << static_cast<double>(on_orig.memory_bytes) /
                   on_syn.memory_bytes
            << "x\n";

  const int concurrency = std::stoi(FlagOr(args, "serve_concurrency", "0"));
  if (concurrency > 0) {
    const int queue_slots = std::stoi(FlagOr(args, "serve_queue", "32"));
    const std::vector<HeldOutBatch> batches =
        SplitIntoBatches(data.test, 32);
    // Solo reference for the exactness check.
    std::vector<Tensor> expect;
    {
      ServingSession solo(cg, *model);
      Rng solo_rng(seed + 2);
      for (const HeldOutBatch& batch : batches) {
        expect.push_back(solo.Serve(batch, graph_batch, solo_rng));
      }
    }
    ConcurrentServer::Config cfg;
    cfg.num_replicas = concurrency;
    cfg.queue_capacity = queue_slots;
    ConcurrentServer server(SessionBase::Build(cg), *model, cfg);
    std::vector<Tensor> outs(batches.size());
    std::vector<ServeTicket> tickets;
    obs::TraceSpan wall("cli.serve_concurrent", /*always_time=*/true);
    for (size_t i = 0; i < batches.size(); ++i) {
      // Admission blocks on a full queue (the default backpressure), so a
      // burst larger than --serve_queue is absorbed without rejects.
      StatusOr<ServeTicket> t = server.Submit(batches[i], graph_batch,
                                              &outs[i]);
      if (!t.ok()) {
        std::cerr << t.status().ToString() << "\n";
        return 1;
      }
      tickets.push_back(t.value());
    }
    for (ServeTicket& t : tickets) {
      const Status st = t.Wait();
      if (!st.ok()) {
        std::cerr << st.ToString() << "\n";
        return 1;
      }
    }
    const double seconds = wall.ElapsedSeconds();
    bool identical = true;
    for (size_t i = 0; i < outs.size(); ++i) {
      identical = identical && outs[i].SameShape(expect[i]) &&
                  std::memcmp(outs[i].data(), expect[i].data(),
                              static_cast<size_t>(outs[i].size()) *
                                  sizeof(float)) == 0;
    }
    server.Shutdown();
    std::cout << "  concurrent: " << concurrency << " replicas, queue "
              << queue_slots << ": " << batches.size() << " requests in "
              << seconds * 1e3 << " ms ("
              << (seconds > 0.0 ? batches.size() / seconds : 0.0)
              << " req/s aggregate), pool memory "
              << server.pool().memory_bytes() / 1024
              << " KB, logits bit-identical to solo session: "
              << (identical ? "yes" : "NO") << "\n";
    if (!identical) return 1;
  }
  return 0;
}

/// Applies --log_level / --trace_out before the command runs. Returns
/// false on an unparseable level.
bool SetupObservability(const Args& args) {
  obs::InitObservabilityFromEnv();
  const std::string level_text = FlagOr(args, "log_level", "");
  if (!level_text.empty()) {
    obs::LogLevel level;
    if (!obs::ParseLogLevel(level_text, &level)) {
      std::cerr << "bad --log_level '" << level_text
                << "' (want debug|info|warn|error|off)\n";
      return false;
    }
    obs::SetMinLogLevel(level);
  }
  if (!FlagOr(args, "trace_out", "").empty()) obs::EnableTracing(true);
  const std::string threads_text = FlagOr(args, "threads", "");
  if (!threads_text.empty()) {
    int threads = 0;
    try {
      threads = std::stoi(threads_text);
    } catch (...) {
    }
    if (threads < 1) {
      std::cerr << "bad --threads '" << threads_text
                << "' (want a positive integer)\n";
      return false;
    }
    ThreadPool::Global().SetNumThreads(threads);
  }
  const std::string simd_text = FlagOr(args, "simd", "");
  if (!simd_text.empty()) {
    if (!simd::SetTierFromSpec(simd_text)) {
      std::cerr << "bad --simd '" << simd_text
                << "' (want auto|avx2|scalar)\n";
      return false;
    }
  } else {
    // Resolve MCOND_SIMD now so the one INFO line and the mcond.simd.tier
    // gauge land at startup (and in --metrics_out snapshots) instead of at
    // the first kernel call.
    (void)simd::ActiveTier();
  }
  const std::string prefetch_text = FlagOr(args, "prefetch_segments", "");
  if (!prefetch_text.empty()) {
    int prefetch = -1;
    try {
      prefetch = std::stoi(prefetch_text);
    } catch (...) {
    }
    if (prefetch < 0) {
      std::cerr << "bad --prefetch_segments '" << prefetch_text
                << "' (want an integer >= 0; 0 disables prefetch)\n";
      return false;
    }
    SetPrefetchSegments(prefetch);
  } else {
    // Resolve MCOND_PREFETCH_SEGMENTS now so the mcond.shard.prefetch.depth
    // gauge lands in --metrics_out snapshots even when no store is opened.
    (void)PrefetchSegments();
  }
  return true;
}

/// Builds (but does not start) the live exporter when any of the
/// --metrics_export_* flags are present. Returns nullptr when disabled.
std::unique_ptr<obs::MetricsExporter> MakeMetricsExporter(const Args& args) {
  obs::MetricsExporterOptions options;
  options.jsonl_path = FlagOr(args, "metrics_export_path", "");
  options.prometheus_path = FlagOr(args, "metrics_export_prom", "");
  if (options.jsonl_path.empty() && options.prometheus_path.empty()) {
    return nullptr;
  }
  try {
    options.interval_ms =
        std::stoi(FlagOr(args, "metrics_export_interval_ms", "1000"));
  } catch (...) {
    options.interval_ms = 0;  // Start() rejects it with a clear message.
  }
  return std::make_unique<obs::MetricsExporter>(options);
}

/// Writes --trace_out / --metrics_out / --metrics_prom_out files after the
/// command ran.
int ExportObservability(const Args& args, int command_rc) {
  const std::string trace_out = FlagOr(args, "trace_out", "");
  if (!trace_out.empty()) {
    const Status status = obs::WriteTraceJson(trace_out);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "wrote trace (" << obs::TraceEventsRecorded()
              << " spans) to " << trace_out << "\n";
  }
  const std::string metrics_out = FlagOr(args, "metrics_out", "");
  if (!metrics_out.empty()) {
    const Status status = obs::WriteMetricsJson(metrics_out);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "wrote metrics to " << metrics_out << "\n";
  }
  const std::string prom_out = FlagOr(args, "metrics_prom_out", "");
  if (!prom_out.empty()) {
    const Status status = obs::WriteMetricsPrometheus(prom_out);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "wrote prometheus metrics to " << prom_out << "\n";
  }
  return command_rc;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: mcond_cli <datasets|condense|inspect|serve> "
                 "[--log_level L] [--trace_out F] [--metrics_out F] "
                 "[--metrics_prom_out F] [--metrics_export_path F] "
                 "[--metrics_export_prom F] [--metrics_export_interval_ms N] "
                 "[--threads N] [--simd auto|avx2|scalar] "
                 "[--prefetch_segments N] [flags]\n";
    return 1;
  }
  const std::string cmd = argv[1];
  const Args args = ParseArgs(argc, argv);
  if (!SetupObservability(args)) return 1;
  std::unique_ptr<obs::MetricsExporter> exporter = MakeMetricsExporter(args);
  if (exporter != nullptr) {
    const Status status = exporter->Start();
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  }
  int rc;
  if (cmd == "datasets") {
    rc = CmdDatasets();
  } else if (cmd == "condense") {
    rc = CmdCondense(args);
  } else if (cmd == "inspect") {
    rc = CmdInspect(args);
  } else if (cmd == "serve") {
    rc = CmdServe(args);
  } else {
    std::cerr << "unknown command: " << cmd << "\n";
    return 1;
  }
  // Stop (final tick + join) before the one-shot exports so --metrics_out
  // and the exporter's last line agree on the final counter values.
  if (exporter != nullptr) exporter->Stop();
  return ExportObservability(args, rc);
}

}  // namespace
}  // namespace mcond

int main(int argc, char** argv) { return mcond::Run(argc, argv); }
