#!/usr/bin/env bash
# Sanity-checks the checked-in bench baseline context (BENCH_*.json)
# against the current host: a baseline captured on a different CPU count
# is not comparable to numbers measured here (thread-sweep rows measure
# dispatch overhead vs real scaling), and should be re-recorded before
# being quoted.
#
# This is a WARNING lint: mismatches print a clear note but exit 0 —
# baselines are recorded on dedicated hosts, and failing every dev/CI
# checkout with different hardware would just teach people to ignore the
# suite. It exits non-zero only when a BENCH json exists but its context
# is unreadable (missing num_cpus), which means the file is malformed.
#
# Usage: check_bench_context.sh [repo_root]   (also run as a ctest entry)

set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"

host_cpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 0)

status=0
found=0
for f in "$root"/BENCH_*.json; do
  [ -e "$f" ] || continue
  found=1
  # "num_cpus": N — the google-benchmark context field all baselines carry.
  bench_cpus=$(sed -n 's/.*"num_cpus"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$f" | head -1)
  if [ -z "$bench_cpus" ]; then
    echo "error: $(basename "$f") has no \"num_cpus\" context field (malformed baseline?)"
    status=1
    continue
  fi
  if [ "$bench_cpus" != "$host_cpus" ]; then
    echo "warning: $(basename "$f") was captured with num_cpus=$bench_cpus but this host has $host_cpus;"
    echo "         its rows are not comparable to local measurements — re-record before quoting"
    echo "         (see docs/performance.md, 'Measuring')."
  else
    echo "OK: $(basename "$f") num_cpus=$bench_cpus matches this host"
  fi
done

if [ "$found" = 0 ]; then
  echo "OK: no BENCH_*.json baselines to check"
fi
exit "$status"
