#!/usr/bin/env bash
# Regression check for mcond_cli's flag parser: every subcommand accepts
# both `--key value` and `--key=value` spellings, and they mean the same
# thing. Runs a small condense round twice — once per spelling — through a
# real subprocess (the full argv path, not a unit-tested parser) and
# requires the two artifacts to be byte-identical; then round-trips each
# through `inspect` and compares the reports. A boolean flag given in both
# spellings must also behave identically.
#
# Usage: check_cli_flags.sh <path-to-mcond_cli>
# Registered as a ctest (tools/CMakeLists.txt).
set -euo pipefail

CLI="${1:?usage: check_cli_flags.sh <mcond_cli binary>}"

workdir=$(mktemp -d "${TMPDIR:-/tmp}/mcond_cli_flags.XXXXXX")
trap 'rm -rf "$workdir"' EXIT

# Same condense round, two spellings. The run is deterministic in --seed,
# so any parse divergence (a flag dropped, misread, or mis-valued) shows up
# as a byte difference in the artifact.
"$CLI" condense --dataset tiny-sim --ratio 0.05 --epochs 2 --seed 7 \
    --out "$workdir/space.bin" > "$workdir/space.out"
"$CLI" condense --dataset=tiny-sim --ratio=0.05 --epochs=2 --seed=7 \
    --out="$workdir/equals.bin" > "$workdir/equals.out"

if ! cmp -s "$workdir/space.bin" "$workdir/equals.bin"; then
  echo "FLAG PARSE FAILURE: --key value and --key=value condense artifacts differ" >&2
  exit 1
fi

# Mixed spellings in one invocation must also work.
"$CLI" condense --dataset tiny-sim --ratio=0.05 --epochs 2 --seed=7 \
    --out "$workdir/mixed.bin" > /dev/null
if ! cmp -s "$workdir/space.bin" "$workdir/mixed.bin"; then
  echo "FLAG PARSE FAILURE: mixed flag spellings produce a different artifact" >&2
  exit 1
fi

# Round-trip through a second subcommand: inspect reads the artifact path
# as a positional arg; its report must match for both artifacts.
"$CLI" inspect "$workdir/space.bin" > "$workdir/space.inspect"
"$CLI" inspect "$workdir/equals.bin" > "$workdir/equals.inspect"
if ! diff -q "$workdir/space.inspect" "$workdir/equals.inspect" > /dev/null; then
  echo "FLAG PARSE FAILURE: inspect reports differ between the two artifacts" >&2
  diff "$workdir/space.inspect" "$workdir/equals.inspect" >&2 || true
  exit 1
fi

# Boolean flags: bare `--verbose` and `--verbose=1` both enable it (the
# condense log gains per-round lines either way; just require success and
# identical artifacts — verbosity must not leak into the output file).
"$CLI" condense --dataset tiny-sim --ratio 0.05 --epochs 2 --seed 7 \
    --verbose --out "$workdir/verbose_bare.bin" > /dev/null
"$CLI" condense --dataset=tiny-sim --ratio=0.05 --epochs=2 --seed=7 \
    --verbose=1 --out="$workdir/verbose_eq.bin" > /dev/null
if ! cmp -s "$workdir/verbose_bare.bin" "$workdir/verbose_eq.bin"; then
  echo "FLAG PARSE FAILURE: --verbose vs --verbose=1 artifacts differ" >&2
  exit 1
fi
if ! cmp -s "$workdir/space.bin" "$workdir/verbose_bare.bin"; then
  echo "FLAG PARSE FAILURE: --verbose changed the condensed artifact" >&2
  exit 1
fi

echo "OK: --key value, --key=value and mixed spellings parse identically across subcommands"
exit 0
